open Lq_value
open Lq_expr.Dsl

let filtered_lineitem =
  source "lineitem" |> where "lf" (v "lf" $. "l_shipdate" <=: p "cutoff")

let aggregation = Queries.q1_grouping filtered_lineitem

let aggregation_n n =
  if n < 1 then invalid_arg "Workloads.aggregation_n";
  let one = float 1.0 in
  (* n distinct Sums over the same staged columns: scaled versions of the
     discounted price. *)
  let agg i =
    ( Printf.sprintf "sum_%d" i,
      sum (v "g") "x"
        ((v "x" $. "l_extendedprice")
        *: (one -: (v "x" $. "l_discount"))
        *: float (1.0 +. (float_of_int i /. 100.0))) )
  in
  filtered_lineitem
  |> group_by
       ~key:("l", v "l" $. "l_returnflag")
       ~result:
         ("g", record (("flag", v "g" $. "Key") :: List.init n agg))

let sorting =
  filtered_lineitem |> order_by [ ("s", v "s" $. "l_extendedprice", asc) ]

let join =
  Queries.q3_join
    ~customer:
      (source "customer" |> where "cf" (v "cf" $. "c_mktsegment" =: str "BUILDING"))
    ~orders:(source "orders" |> where "of" (v "of" $. "o_orderdate" <=: p "cutoff_o"))
    ~lineitem:filtered_lineitem

let params ~sel =
  [
    ("cutoff", Value.Date (Dbgen.shipdate_cutoff sel));
    ("cutoff_o", Value.Date (Dbgen.orderdate_cutoff sel));
  ]
