open Lq_value

type stats = {
  hits : int;
  misses : int;
  entries : int;
  cached_rows : int;
}

type entry = { rows : Value.t list; mutable stamp : int }

type t = {
  table : (string, entry) Hashtbl.t;
  max_entries : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(max_entries = 128) () =
  { table = Hashtbl.create 64; max_entries; clock = 0; hits = 0; misses = 0 }

let key ~engine ~shape ~consts ~params =
  let buf = Buffer.create 128 in
  Buffer.add_string buf engine;
  Buffer.add_char buf '\000';
  Buffer.add_string buf shape;
  List.iter
    (fun v ->
      Buffer.add_char buf '\000';
      Buffer.add_string buf (Value.to_string v))
    consts;
  List.iter
    (fun (name, v) ->
      Buffer.add_char buf '\001';
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      Buffer.add_string buf (Value.to_string v))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) params);
  Buffer.contents buf

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    t.clock <- t.clock + 1;
    entry.stamp <- t.clock;
    t.hits <- t.hits + 1;
    Some entry.rows
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.table;
  match !victim with
  | Some (k, _) -> Hashtbl.remove t.table k
  | None -> ()

let store t key rows =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.max_entries then evict_lru t;
    t.clock <- t.clock + 1;
    Hashtbl.add t.table key { rows; stamp = t.clock }
  end

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    entries = Hashtbl.length t.table;
    cached_rows = Hashtbl.fold (fun _ e acc -> acc + List.length e.rows) t.table 0;
  }

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0
