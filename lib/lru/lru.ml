type 'a node = {
  key : string;
  value : 'a;
  weight : int;
  mutable prev : 'a node option;  (** towards MRU *)
  mutable next : 'a node option;  (** towards LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (** MRU *)
  mutable tail : 'a node option;  (** LRU *)
  mutable max_entries : int;
  mutable max_weight : int;
  mutable total_weight : int;
}

let create ?(max_entries = -1) ?(max_weight = -1) () =
  {
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    max_entries;
    max_weight;
    total_weight = 0;
  }

let disabled t = t.max_entries = 0 || t.max_weight = 0
let length t = Hashtbl.length t.tbl
let total_weight t = t.total_weight
let max_entries t = t.max_entries
let max_weight t = t.max_weight

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl key)
let mem t key = Hashtbl.mem t.tbl key
let peek_lru t = Option.map (fun n -> (n.key, n.value)) t.tail

let remove_node t node =
  unlink t node;
  Hashtbl.remove t.tbl node.key;
  t.total_weight <- t.total_weight - node.weight

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
    remove_node t node;
    Some node.value

let pop_lru t =
  match t.tail with
  | None -> None
  | Some node ->
    remove_node t node;
    Some (node.key, node.value)

let over_capacity t =
  (t.max_entries >= 0 && length t > t.max_entries)
  || (t.max_weight >= 0 && t.total_weight > t.max_weight)

let add t ~key ?(weight = 1) value =
  if disabled t || (t.max_weight >= 0 && weight > t.max_weight) then None
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old -> remove_node t old
    | None -> ());
    let node = { key; value; weight; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node;
    t.total_weight <- t.total_weight + weight;
    let evicted = ref [] in
    while over_capacity t do
      match pop_lru t with
      | Some kv -> evicted := kv :: !evicted
      | None -> assert false
    done;
    Some (List.rev !evicted)
  end

let drop_where t pred =
  let victims =
    Hashtbl.fold (fun _ node acc -> if pred node.key node.value then node :: acc else acc)
      t.tbl []
  in
  List.iter (remove_node t) victims;
  List.length victims

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.total_weight <- 0

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go ((node.key, node.value) :: acc) node.next
  in
  go [] t.head
