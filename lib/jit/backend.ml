module Lru = Lq_lru.Lru
module Counters = Lq_metrics.Counters
module Profile = Lq_metrics.Profile
module Codegen_c = Lq_native.Codegen_c

let counters = Counters.create ()
let cc () =
  match Sys.getenv_opt "LQ_CC" with
  | Some c when String.trim c <> "" -> c
  | _ -> "cc"

(* Memoized per command name so tests can point LQ_CC elsewhere. *)
let cc_probe : (string * bool) option Atomic.t = Atomic.make None

let cc_available () =
  let name = cc () in
  match Atomic.get cc_probe with
  | Some (probed, ok) when String.equal probed name -> ok
  | _ ->
    let ok =
      Sys.command (Printf.sprintf "command -v %s >/dev/null 2>&1" (Filename.quote name)) = 0
    in
    Atomic.set cc_probe (Some (name, ok));
    ok

let digest_of_program (p : Codegen_c.program) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (string_of_int Codegen_c.abi_version);
  List.iter (fun t -> Buffer.add_string b ("\x01" ^ t)) p.scan_tables;
  List.iter
    (function
      | Codegen_c.Named n -> Buffer.add_string b ("\x02" ^ n)
      | Codegen_c.Str_const s -> Buffer.add_string b ("\x03" ^ s))
    p.int_params;
  List.iter (fun n -> Buffer.add_string b ("\x04" ^ n)) p.float_params;
  List.iter
    (fun (n, vt) -> Buffer.add_string b ("\x05" ^ n ^ ":" ^ Lq_value.Vtype.to_string vt))
    p.out_fields;
  Buffer.add_string b (if p.out_scalar then "\x06s" else "\x06r");
  Buffer.add_string b p.c_source;
  Digest.to_hex (Digest.string (Buffer.contents b))

type artifact = {
  digest : string;
  so_path : string;
  handle : Dl.handle;
  fn : Dl.symbol;
}

type state = {
  dir : string;
  disk : string Lru.t;
      (* key = digest, value = .so basename, weight = file size in bytes.
         Basenames carry a per-build stamp (lqjit-<digest>.<stamp>.so):
         the dynamic loader dedups loaded objects by *path*, so a
         recompile of an evicted or corrupted digest must land at a path
         that has never been dlopened — reusing the canonical name would
         silently resolve to the stale (possibly damaged) mapping. *)
  mem : artifact Lru.t;  (* key = digest *)
  mutable graveyard : Dl.handle list;
}

let mu = Mutex.create ()
let st : state option ref = ref None
let seq = Atomic.make 0
let graveyard_hooked = ref false

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> default)

let cc_timeout_ms () = float_of_int (env_int "LQ_JIT_CC_TIMEOUT_MS" 60_000)
let cc_rlimit_mb () = env_int "LQ_JIT_CC_RLIMIT_MB" 4096

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rm_f path = try Sys.remove path with Sys_error _ -> ()

let is_so name =
  String.length name > 9
  && String.sub name 0 6 = "lqjit-"
  && Filename.check_suffix name ".so"

(* Both the stamped (lqjit-<digest>.<stamp>.so) and the legacy unstamped
   (lqjit-<digest>.so) forms parse: the digest is everything between the
   prefix and the first dot. *)
let digest_of_so name =
  if not (is_so name) then None
  else
    let core = String.sub name 6 (String.length name - 6) in
    match String.index_opt core '.' with
    | Some i when i > 0 -> Some (String.sub core 0 i)
    | _ -> None

let is_manifest name =
  String.length name > 6
  && String.sub name 0 6 = "lqjit-"
  && Filename.check_suffix name ".so.manifest"

let is_dropping name =
  List.exists (Filename.check_suffix name) [ ".c"; ".o"; ".err"; ".tmp" ]

(* --- integrity manifests ---------------------------------------------- *)

let manifest_path so_path = so_path ^ ".manifest"

(* One line: "v1 md5=<hex> size=<bytes> abi=<n>". Written tmp + rename
   after the object itself lands, so a crash can only leave a manifestless
   object — which the hit path treats as corrupt and recompiles. *)
let write_manifest so_path =
  let size = (Unix.stat so_path).Unix.st_size in
  let line =
    Printf.sprintf "v1 md5=%s size=%d abi=%d\n"
      (Digest.to_hex (Digest.file so_path))
      size Codegen_c.abi_version
  in
  let tmp = manifest_path so_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc line;
  close_out oc;
  Sys.rename tmp (manifest_path so_path)

let verify_artifact so_path =
  let mpath = manifest_path so_path in
  match open_in_bin mpath with
  | exception Sys_error _ -> Error "no integrity manifest"
  | ic -> (
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match Scanf.sscanf_opt line "v1 md5=%s@ size=%d abi=%d" (fun m s a -> (m, s, a)) with
    | None -> Error "unparseable integrity manifest"
    | Some (_, _, abi) when abi <> Codegen_c.abi_version ->
      Error (Printf.sprintf "manifest ABI %d, expected %d" abi Codegen_c.abi_version)
    | Some (md5, size, _) -> (
      match Unix.stat so_path with
      | exception Unix.Unix_error _ -> Error "artifact vanished"
      | stat ->
        if stat.Unix.st_size <> size then
          Error
            (Printf.sprintf "size %d, manifest says %d (torn write?)" stat.Unix.st_size size)
        else if not (String.equal (Digest.to_hex (Digest.file so_path)) md5) then
          Error "content digest mismatch (cache poisoning or bit rot)"
        else Ok ()))

(* The "jit/cache" chaos point simulates cache poisoning for real: when
   it fires, the cached object is replaced by its own truncated half and
   the integrity check downstream must discover, evict and recompile it.
   Corruption goes through rename (a fresh inode), never ftruncate in
   place: a mapped .so whose backing inode shrinks SIGBUSes its users —
   including exit-time finalization — which no recovery code can catch. *)
let chaos_corrupt so_path =
  match Lq_fault.Inject.hit "jit/cache" with
  | () -> ()
  | exception Lq_fault.Fault _ -> (
    match Unix.stat so_path with
    | exception Unix.Unix_error _ -> ()
    | stat ->
      let keep = stat.Unix.st_size / 2 in
      let ic = open_in_bin so_path in
      let half = really_input_string ic keep in
      close_in ic;
      let tmp = so_path ^ ".chaos.tmp" in
      let oc = open_out_bin tmp in
      output_string oc half;
      close_out oc;
      Sys.rename tmp so_path)

(* Startup sweep: seed the disk LRU with surviving objects (oldest first,
   so they are first in line for eviction; a duplicated digest keeps only
   its newest build), drop orphaned manifests, and clear stale build
   droppings another process may have left behind. *)
let sweep dir (disk : string Lru.t) =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    let now = Unix.gettimeofday () in
    let sos = ref [] in
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        match Unix.stat path with
        | exception Unix.Unix_error _ -> ()
        | stat ->
          if stat.Unix.st_kind <> Unix.S_REG then ()
          else if is_manifest name then ()
          else if is_so name then sos := (stat.Unix.st_mtime, name, stat.Unix.st_size) :: !sos
          else if is_dropping name && now -. stat.Unix.st_mtime > 600. then rm_f path)
      entries;
    let drop base =
      rm_f (Filename.concat dir base);
      rm_f (manifest_path (Filename.concat dir base))
    in
    List.iter
      (fun (_, name, size) ->
        match digest_of_so name with
        | None -> drop name
        | Some digest -> (
          (match Lru.remove disk digest with
          | Some older when not (String.equal older name) -> drop older
          | _ -> ());
          match Lru.add disk ~key:digest ~weight:size name with
          | Some evicted -> List.iter (fun (_, base) -> drop base) evicted
          | None -> drop name))
      (List.sort compare !sos);
    (* manifests whose object is gone are dead weight *)
    Array.iter
      (fun name ->
        if is_manifest name then begin
          let so = Filename.chop_suffix name ".manifest" in
          if not (Sys.file_exists (Filename.concat dir so)) then
            rm_f (Filename.concat dir name)
        end)
      entries

let init () =
  let dir =
    match Sys.getenv_opt "LQ_JIT_CACHE_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "lq-jit-cache"
  in
  mkdir_p dir;
  let max_bytes =
    match Sys.getenv_opt "LQ_JIT_CACHE_BYTES" with
    | Some s when int_of_string_opt (String.trim s) <> None -> int_of_string (String.trim s)
    | _ -> env_int "LQ_JIT_CACHE_MB" 256 * 1024 * 1024
  in
  let disk = Lru.create ~max_weight:max_bytes () in
  sweep dir disk;
  let mem = Lru.create ~max_entries:(env_int "LQ_JIT_MEM_ENTRIES" 128) () in
  { dir; disk; mem; graveyard = [] }

let state () =
  Mutex.protect mu (fun () ->
    match !st with
    | Some s -> s
    | None ->
      let s = init () in
      st := Some s;
      if not !graveyard_hooked then begin
        graveyard_hooked := true;
        at_exit (fun () ->
          Mutex.protect mu (fun () ->
            match !st with
            | None -> ()
            | Some s ->
              List.iter (fun h -> try Dl.dlclose h with _ -> ()) s.graveyard;
              s.graveyard <- []))
      end;
      s)

let cache_dir () = (state ()).dir

let reset_for_tests () =
  Mutex.protect mu (fun () -> st := None);
  Atomic.set cc_probe None

let read_truncated path limit =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    let n = min limit (in_channel_length ic) in
    let s = really_input_string ic n in
    close_in ic;
    (if n < in_channel_length ic then s ^ "..." else s) |> String.trim

(* --- the guarded cc run ------------------------------------------------ *)

(* Shared with the validation runner build: one watchdogged compiler
   invocation, stderr+stdout captured to [err_file], the child killed and
   reaped on deadline overrun so the calling Domain is never wedged. *)
let run_cc args ~err_file =
  match
    Subproc.run ~timeout_ms:(cc_timeout_ms ()) ~rlimit_mb:(cc_rlimit_mb ())
      ~output_file:err_file (cc ()) args
  with
  | Subproc.Exited 0 -> Ok ()
  | Subproc.Exited 127 -> Error (Printf.sprintf "compiler %S not found" (cc ()))
  | Subproc.Exited rc ->
    Error (Printf.sprintf "%s exited %d: %s" (cc ()) rc (read_truncated err_file 2000))
  | Subproc.Signaled s -> Error (Printf.sprintf "%s killed by %s" (cc ()) s)
  | Subproc.Timed_out ms ->
    Counters.incr counters "service/jit/cc_timeouts";
    Error
      (Printf.sprintf "%s timed out after %.0f ms (LQ_JIT_CC_TIMEOUT_MS) and was killed"
         (cc ()) ms)

(* Compile [source] for [digest] at a never-before-used path. Droppings
   (.c, .err, orphan .so.tmp) are removed on every path — success,
   compiler failure, timeout, and any exception in between — not left
   for the startup sweep. *)
let compile_fresh s ~digest ~source =
  Lq_fault.Inject.hit "jit/compile";
  if not (cc_available ()) then Error (Printf.sprintf "no C compiler (%S not on PATH)" (cc ()))
  else begin
    let t0 = Profile.now_ms () in
    let stamp = Printf.sprintf "%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add seq 1) in
    let base = "lqjit-" ^ digest ^ "." ^ stamp ^ ".so" in
    let final = Filename.concat s.dir base in
    let c_file = Filename.concat s.dir ("lqjit-" ^ digest ^ "." ^ stamp ^ ".c") in
    let so_tmp = c_file ^ ".so.tmp" in
    let err_file = c_file ^ ".err" in
    Fun.protect
      ~finally:(fun () ->
        rm_f c_file;
        rm_f err_file;
        rm_f so_tmp)
      (fun () ->
        let oc = open_out_bin c_file in
        output_string oc source;
        close_out oc;
        match
          run_cc
            [ "-O2"; "-std=c11"; "-shared"; "-fPIC"; "-o"; so_tmp; c_file; "-lm" ]
            ~err_file
        with
        | Error _ as e -> e
        | Ok () ->
          let size = (Unix.stat so_tmp).Unix.st_size in
          Sys.rename so_tmp final;
          write_manifest final;
          Counters.incr counters "service/jit/compiles";
          Counters.add_ms counters "service/jit/compile_ms" (Profile.now_ms () -. t0);
          Mutex.protect mu (fun () ->
            let drop b =
              Counters.incr counters "service/jit/evictions_disk";
              rm_f (Filename.concat s.dir b);
              rm_f (manifest_path (Filename.concat s.dir b))
            in
            (* Lru.add replaces an existing key without reporting the old
               value as evicted — drop any previous build of this digest
               explicitly or its file would linger until the next sweep. *)
            (match Lru.remove s.disk digest with
            | Some older when not (String.equal older base) -> drop older
            | _ -> ());
            match Lru.add s.disk ~key:digest ~weight:size base with
            | Some evicted ->
              List.iter (fun (_, b) -> if not (String.equal b base) then drop b) evicted
            | None -> ());
          Ok final)
  end

(* Build (or find on disk) the shared object for [digest]. Disk hits are
   integrity-checked against the sidecar manifest before they are served:
   a truncated, poisoned or manifestless object is evicted and recompiled
   instead of reaching dlopen. *)
let build s ~digest ~source =
  let disk_hit =
    Mutex.protect mu (fun () ->
      match Lru.find s.disk digest with
      | Some base ->
        let path = Filename.concat s.dir base in
        if Sys.file_exists path then Some path else None
      | None -> None)
  in
  match disk_hit with
  | None -> compile_fresh s ~digest ~source
  | Some path -> (
    chaos_corrupt path;
    match verify_artifact path with
    | Ok () ->
      Counters.incr counters "service/jit/cache_hit_disk";
      Ok path
    | Error _why ->
      Counters.incr counters "service/jit/cache_corrupt";
      Mutex.protect mu (fun () ->
        ignore (Lru.remove s.disk digest);
        rm_f path;
        rm_f (manifest_path path));
      compile_fresh s ~digest ~source)

let load ~digest so_path =
  match Dl.dlopen so_path with
  | exception Failure msg -> Error ("dlopen: " ^ msg)
  | handle -> (
    match Dl.dlsym handle "lq_query" with
    | exception Failure msg ->
      (try Dl.dlclose handle with _ -> ());
      Error ("dlsym: " ^ msg)
    | fn -> Ok { digest; so_path; handle; fn })

(* --- per-digest serialization ------------------------------------------ *)

(* Two Domains racing the same digest through the miss path used to both
   dlopen the object; the loser's handle was replaced in the memory LRU
   without ever reaching the graveyard, leaking it for the process
   lifetime. The whole check → build → load → insert sequence now runs
   under a per-digest mutex (different digests still build in parallel);
   entries are refcounted so the table stays bounded by in-flight work. *)
let inflight : (string, Mutex.t * int ref) Hashtbl.t = Hashtbl.create 16

let with_digest_lock digest f =
  let dmu, refs =
    Mutex.protect mu (fun () ->
      match Hashtbl.find_opt inflight digest with
      | Some ((_, refs) as entry) ->
        incr refs;
        entry
      | None ->
        let entry = (Mutex.create (), ref 1) in
        Hashtbl.add inflight digest entry;
        entry)
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect mu (fun () ->
        decr refs;
        if !refs = 0 then Hashtbl.remove inflight digest))
    (fun () -> Mutex.protect dmu f)

let get ~digest ~source =
  let s = state () in
  match Mutex.protect mu (fun () -> Lru.find s.mem digest) with
  | Some art ->
    Counters.incr counters "service/jit/cache_hit_mem";
    Ok art
  | None ->
    with_digest_lock digest (fun () ->
      (* re-check: the Domain we waited on may have just inserted it *)
      match Mutex.protect mu (fun () -> Lru.find s.mem digest) with
      | Some art ->
        Counters.incr counters "service/jit/cache_hit_mem";
        Ok art
      | None -> (
        match build s ~digest ~source with
        | Error _ as e ->
          Counters.incr counters "service/jit/compile_failures";
          e
        | Ok so_path -> (
          match load ~digest so_path with
          | Error _ as e ->
            Counters.incr counters "service/jit/compile_failures";
            e
          | Ok art ->
            Mutex.protect mu (fun () ->
              match Lru.add s.mem ~key:digest art with
              | Some evicted ->
                List.iter
                  (fun (_, (a : artifact)) -> s.graveyard <- a.handle :: s.graveyard)
                  evicted
              | None -> ());
            Ok art)))
