type field = { name : string; ty : Vtype.t }
type t = { fields : field array; index : (string, int) Hashtbl.t }

let make field_list =
  let fields =
    Array.of_list (List.map (fun (name, ty) -> { name; ty }) field_list)
  in
  let index = Hashtbl.create (Array.length fields) in
  Array.iteri
    (fun i f ->
      if Hashtbl.mem index f.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate field %S" f.name);
      Hashtbl.add index f.name i)
    fields;
  { fields; index }

let fields t = t.fields
let arity t = Array.length t.fields
let field_index t name = Hashtbl.find_opt t.index name

let field_index_exn t name =
  match field_index t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema: unknown field %S" name)

let field_type t name =
  Option.map (fun i -> t.fields.(i).ty) (field_index t name)

let mem t name = Hashtbl.mem t.index name
let names t = Array.to_list t.fields |> List.map (fun f -> f.name)

let to_vtype t =
  Vtype.Record (Array.to_list t.fields |> List.map (fun f -> (f.name, f.ty)))

let of_vtype = function
  | Vtype.Record fields -> Some (make fields)
  | Vtype.Bool | Vtype.Int | Vtype.Float | Vtype.String | Vtype.Date
  | Vtype.List _ ->
    None

let row t values =
  if List.length values <> Array.length t.fields then
    invalid_arg "Schema.row: arity mismatch";
  Value.Record
    (Array.of_list (List.map2 (fun f v -> (f.name, v)) (Array.to_list t.fields) values))

let project t names =
  make
    (List.map
       (fun name ->
         let i = field_index_exn t name in
         (name, t.fields.(i).ty))
       names)

let pp fmt t = Vtype.pp fmt (to_vtype t)
