(** The combined C#/C backend (§6), as an engine.

    The managed side iterates the boxed source collections, applies the
    source-level filters, performs the implicit projection and stages the
    surviving fields into flat buffers; the native plan then does the heavy
    lifting over the staged rows; results are constructed natively from
    copied fields (Max) or by re-associating staged index columns with the
    original objects (Min).

    Four variants, as measured in §7:

    - {e full materialization} (§6.1.1): all input is staged before the
      native code runs;
    - {e buffered} (§6.1.2): a single fixed-size buffer is refilled as the
      native side consumes it, keeping the staging footprint constant;
    - {e Max}: stage every field the offloaded part or the result needs;
    - {e Min}: stage only keys plus an index column and look the original
      objects up again for result construction — only possible when results
      are (projections of) source elements or a plain join of them; refused
      otherwise ("the Min approach is not possible for complex queries",
      §7.4). *)

type construction =
  | Min
  | Max

val make : ?buffered:bool -> ?construction:construction -> unit -> Lq_catalog.Engine_intf.t
val engine : Lq_catalog.Engine_intf.t
(** Full materialization, Max construction — the default "C#/C Code". *)

val engine_buffered : Lq_catalog.Engine_intf.t

val staged_bytes : unit -> int
(** Staging memory used by the most recent execution on any hybrid engine
    (the §7.1 "390 MB vs one buffer page" comparison). *)
