(** Named, ordered, typed record schemas with O(1) field lookup.

    A schema plays the role of the static class/struct definition the
    paper's code generators recover through C# reflection: it fixes field
    order (for positional access in compiled plans) and field types (for
    flat-layout generation in the native engine). *)

type field = { name : string; ty : Vtype.t }

type t

val make : (string * Vtype.t) list -> t
(** @raise Invalid_argument on duplicate field names. *)

val fields : t -> field array
val arity : t -> int

val field_index : t -> string -> int option
val field_index_exn : t -> string -> int
val field_type : t -> string -> Vtype.t option
val mem : t -> string -> bool
val names : t -> string list

val to_vtype : t -> Vtype.t
(** The record type described by the schema. *)

val of_vtype : Vtype.t -> t option
(** Recovers a schema from a [Vtype.Record]. *)

val row : t -> Value.t list -> Value.t
(** [row schema values] builds a record value with the schema's field names,
    in schema order. @raise Invalid_argument on arity mismatch. *)

val project : t -> string list -> t
(** Sub-schema with the given fields, in the given order. *)

val pp : Format.formatter -> t -> unit
