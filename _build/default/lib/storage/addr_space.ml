let cursor = ref 0x1000

let alloc bytes =
  let base = !cursor in
  let padded = (max bytes 1 + 63) land lnot 63 in
  cursor := base + padded;
  base

let reset () = cursor := 0x1000
