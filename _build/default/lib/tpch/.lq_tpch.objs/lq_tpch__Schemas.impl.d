lib/tpch/schemas.ml: Lq_value Schema Vtype
