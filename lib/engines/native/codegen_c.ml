(* Real C emission for lowered plans (§5.1, closed loop).

   [emit_plan] walks the same [Lq_plan.Plan.t] the interpreted native
   backend compiles and renders a self-contained C translation unit with
   one entry point:

     int64_t lq_query(const unsigned char **srcs, const int64_t *nrows,
                      const int64_t *ip, const double *fp,
                      const unsigned char *db, const int32_t *dofs,
                      unsigned char *out, int64_t cap);

   - [srcs]/[nrows]: one raw row page (Rowstore data) + row count per
     entry of [program.scan_tables], in emission order;
   - [ip]/[fp]: integer and float parameter registers, in
     [program.int_params]/[program.float_params] order. String constants
     and parameters arrive as dictionary codes interned by the caller at
     bind time — codes are process state and are never baked into the
     object;
   - [db]/[dofs]: a read-only dictionary snapshot (concatenated bytes +
     int32 offsets) for ordering, LIKE and Length, taken after binding;
   - [out]: a caller-owned result buffer of [cap] rows, packed with the
     [Layout.make program.out_fields] offsets. The function always
     returns the TOTAL row count; rows past [cap] are counted but not
     written, so the caller grows the buffer and re-invokes.

   Semantics mirror [Nplan] closure by closure: the same expression
   typing and coercions as [Nexpr.compile], dense hash slots in
   first-touch insertion order, join chains in attach order, sort
   comparators with the index tiebreak, limits as stop flags. On any
   plan the mirror cannot carry, [emit_plan] raises [Unsupported_c] and
   the JIT keeps serving the shape from the interpreted tier.
   Allocation failures longjmp to a single exit that frees the per-call
   arena and returns -1. *)

open Lq_value
module Ast = Lq_expr.Ast
module P = Lq_plan.Plan
module Layout = Lq_storage.Layout
module Ftype = Lq_storage.Ftype
module Catalog = Lq_catalog.Catalog

exception Unsupported_c of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported_c s)) fmt
let spf = Printf.sprintf

(* The entry-point contract above; bump when it changes so cached .so
   files from older emitters are never dlopened. *)
let abi_version = 1

type cparam =
  | Named of string  (** a query parameter, bound by name at execute *)
  | Str_const of string  (** a string literal, interned to a code at execute *)

type program = {
  c_source : string;
  scan_tables : string list;
  int_params : cparam list;
  float_params : string list;
  out_fields : (string * Vtype.t) list;
  out_scalar : bool;
  needs_dict : bool;
}

(* --- C expressions and elements, mirroring Nexpr.t / Nexpr.elem ----- *)

(* [CI] is an int64_t-valued C expression carrying the host type it
   decodes to (Int / Date / Bool / String dict code); [CF] a double;
   [CB] an int 0/1. All are pure reads — duplication is safe. *)
type cexp = CI of string * Vtype.t | CF of string | CB of string

type celem =
  | CRow of string * Layout.t  (** base-pointer variable over a row page *)
  | CFields of (string * cexp) list
  | CScalar of cexp

type ctx = {
  body : Buffer.t;
  aux : Buffer.t;  (** per-operator comparator functions, before lq_query *)
  mutable indent : int;
  mutable freshc : int;
  mutable islots : (cparam * int) list;  (** reversed insertion order *)
  mutable fslots : (string * int) list;
  mutable scans : string list;  (** reversed *)
  mutable needs_dict : bool;
  cat : Catalog.t;
}

let fresh c p =
  c.freshc <- c.freshc + 1;
  spf "%s%d" p c.freshc

let line c fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string c.body (String.make (2 * c.indent) ' ');
      Buffer.add_string c.body s;
      Buffer.add_char c.body '\n')
    fmt

let push c = c.indent <- c.indent + 1
let pop c = c.indent <- c.indent - 1

let islot c p =
  match List.assoc_opt p c.islots with
  | Some k -> k
  | None ->
    let k = List.length c.islots in
    c.islots <- (p, k) :: c.islots;
    k

let fslot c name =
  match List.assoc_opt name c.fslots with
  | Some k -> k
  | None ->
    let k = List.length c.fslots in
    c.fslots <- (name, k) :: c.fslots;
    k

let scan_index c table =
  let k = List.length c.scans in
  c.scans <- table :: c.scans;
  k

let c_string_lit s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch when Char.code ch < 32 || Char.code ch > 126 ->
        Buffer.add_string b (spf "\\%03o" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* --- typed accessors, mirroring Nexpr ------------------------------- *)

let vty_of = function
  | CI (_, ty) -> ty
  | CF _ -> Vtype.Float
  | CB _ -> Vtype.Bool

let as_int = function
  | CI (code, _) -> code
  | CB code -> code (* comparisons and && yield int 0/1 *)
  | CF _ -> unsupported "expected an integer-typed C expression"

let as_float = function
  | CF code -> code
  | CI (code, Vtype.Int) -> spf "((double)%s)" code
  | CI (_, ty) -> unsupported "cannot use %s as float (C)" (Vtype.to_string ty)
  | CB _ -> unsupported "cannot use bool as float (C)"

let as_bool = function
  | CB code -> code
  | CI (code, Vtype.Bool) -> spf "(%s != 0)" code
  | CI (_, ty) -> unsupported "expected bool, found %s (C)" (Vtype.to_string ty)
  | CF _ -> unsupported "expected bool, found float (C)"

(* One int64 hash part per field: float bits fit a whole part here
   (unlike the OCaml backend's two 63-bit halves); equality on the bit
   image matches Ht's two-part equality exactly. *)
let key_part = function
  | CI (code, _) -> code
  | CB code -> spf "((int64_t)%s)" code
  | CF code -> spf "lq_fkey(%s)" code

let read_field base (f : Layout.field) =
  match f.Layout.ftype with
  | Ftype.F64 -> CF (spf "rd_f64(%s + %d)" base f.Layout.offset)
  | Ftype.I64 -> CI (spf "rd_i64(%s + %d)" base f.Layout.offset, f.Layout.vty)
  | Ftype.I32 | Ftype.Date32 | Ftype.Str32 ->
    CI (spf "rd_i32(%s + %d)" base f.Layout.offset, f.Layout.vty)
  | Ftype.Bool8 ->
    CI (spf "((int64_t)%s[%d])" base f.Layout.offset, f.Layout.vty)

let celem_fields = function
  | CRow (base, layout) ->
    Array.to_list (Layout.fields layout)
    |> List.map (fun (f : Layout.field) -> (f.Layout.name, read_field base f))
  | CFields fs -> fs
  | CScalar t -> [ (Nexpr.scalar_field, t) ]

(* --- expression compilation, mirroring Nexpr.compile ---------------- *)

type pre = T of cexp | Pp of string

let force c = function
  | T t -> t
  | Pp name -> CI (spf "ip[%d]" (islot c (Named name)), Vtype.Int)

let coerce_like c pre ~like =
  match pre with
  | T t -> t
  | Pp name -> (
    match like with
    | CF _ -> CF (spf "fp[%d]" (fslot c name))
    | CI (_, ty) -> CI (spf "ip[%d]" (islot c (Named name)), ty)
    | CB _ -> CB (spf "(ip[%d] != 0)" (islot c (Named name))))

let static_string (e : Ast.expr) =
  match e with Ast.Const (Value.Str s) -> Some s | _ -> None

let cmp_op (op : Ast.binop) =
  match op with
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | _ -> assert false

let no_agg _ _ _ = unsupported "aggregate outside a group context (C)"
let no_subquery _ = unsupported "nested sub-query (C backend)"

let compile c ~env ?(on_agg = no_agg) ?(on_subquery = no_subquery) expr : cexp =
  let rec go (e : Ast.expr) : pre =
    match e with
    | Ast.Const (Value.Int i) -> T (CI (spf "INT64_C(%d)" i, Vtype.Int))
    | Ast.Const (Value.Date d) -> T (CI (spf "INT64_C(%d)" d, Vtype.Date))
    | Ast.Const (Value.Bool b) -> T (CB (if b then "1" else "0"))
    | Ast.Const (Value.Float f) ->
      if not (Float.is_finite f) then
        unsupported "non-finite float constant (C)";
      T (CF (spf "%h" f))
    | Ast.Const (Value.Str s) ->
      (* Dictionary codes are process state: route the literal through a
         synthetic integer register, interned by the caller at bind
         time. *)
      T (CI (spf "ip[%d]" (islot c (Str_const s)), Vtype.String))
    | Ast.Const v -> unsupported "constant %s (C)" (Value.to_string v)
    | Ast.Param name -> Pp name
    | Ast.Var name -> (
      match List.assoc_opt name env with
      | Some (CScalar t) -> T t
      | Some (CRow _ | CFields _) ->
        unsupported "whole-element use of %S (C backend reads scalars)" name
      | None -> unsupported "unbound variable %S (C)" name)
    | Ast.Member (Ast.Var name, field) -> (
      match List.assoc_opt name env with
      | Some (CRow (base, layout)) -> (
        match Layout.field_index layout field with
        | Some i -> T (read_field base (Layout.field_at layout i))
        | None -> unsupported "row has no member %S (C)" field)
      | Some (CFields fields) -> (
        match List.assoc_opt field fields with
        | Some t -> T t
        | None -> unsupported "element has no member %S (C)" field)
      | Some (CScalar _) -> unsupported "member %S of a scalar (C)" field
      | None -> unsupported "unbound variable %S (C)" name)
    | Ast.Member (_, field) ->
      unsupported "nested member access .%s (flat C data only)" field
    | Ast.Unop (Ast.Neg, e) -> (
      match force c (go e) with
      | CI (code, Vtype.Int) -> T (CI (spf "(-%s)" code, Vtype.Int))
      | CF code -> T (CF (spf "(-%s)" code))
      | _ -> unsupported "negation of non-numeric (C)")
    | Ast.Unop (Ast.Not, e) -> T (CB (spf "(!%s)" (as_bool (force c (go e)))))
    | Ast.Binop (Ast.And, a, b) ->
      let fa = as_bool (force c (go a)) in
      let fb = as_bool (force c (go b)) in
      T (CB (spf "(%s && %s)" fa fb))
    | Ast.Binop (Ast.Or, a, b) ->
      let fa = as_bool (force c (go a)) in
      let fb = as_bool (force c (go b)) in
      T (CB (spf "(%s || %s)" fa fb))
    | Ast.Binop (op, a, b) ->
      let pa = go a and pb = go b in
      let ta, tb =
        match (pa, pb) with
        | T ta, T tb -> (ta, tb)
        | T ta, (Pp _ as pb) -> (ta, coerce_like c pb ~like:ta)
        | (Pp _ as pa), T tb -> (coerce_like c pa ~like:tb, tb)
        | (Pp _ as pa), (Pp _ as pb) -> (
          match op with
          | Ast.Div | Ast.Mod ->
            unsupported "integer-or-float division of two parameters (C)"
          | _ ->
            let like = CF "0.0" in
            (coerce_like c pa ~like, coerce_like c pb ~like))
      in
      compile_binop op ta tb
    | Ast.If (cond, th, el) -> (
      let fc = as_bool (force c (go cond)) in
      let pt = go th and pe = go el in
      let tt, te =
        match (pt, pe) with
        | T a, T b -> (a, b)
        | T a, (Pp _ as pb) -> (a, coerce_like c pb ~like:a)
        | (Pp _ as pa), T b -> (coerce_like c pa ~like:b, b)
        | (Pp _ as pa), (Pp _ as pb) -> (force c pa, force c pb)
      in
      match (tt, te) with
      | CI (f1, ty1), CI (f2, ty2) when Vtype.equal ty1 ty2 ->
        T (CI (spf "(%s ? %s : %s)" fc f1 f2, ty1))
      | CB f1, CB f2 -> T (CB (spf "(%s ? %s : %s)" fc f1 f2))
      | (CF _ | CI (_, Vtype.Int)), (CF _ | CI (_, Vtype.Int)) ->
        let f1 = as_float tt and f2 = as_float te in
        T (CF (spf "(%s ? %s : %s)" fc f1 f2))
      | _ -> unsupported "if branches of mismatched C types")
    | Ast.Call (f, args) -> T (compile_call f args)
    | Ast.Agg (kind, src, sel) -> T (on_agg kind src sel)
    | Ast.Subquery q -> T (on_subquery q)
    | Ast.Record_of _ ->
      unsupported "object construction inside a C scalar expression"
  and compile_binop op ta tb : pre =
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
      match (ta, tb) with
      | CI (fa, Vtype.Int), CI (fb, Vtype.Int) ->
        let code =
          match op with
          | Ast.Add -> spf "(%s + %s)" fa fb
          | Ast.Sub -> spf "(%s - %s)" fa fb
          | Ast.Mul -> spf "(%s * %s)" fa fb
          (* C99 [/] and [%] truncate toward zero: OCaml (/) and (mod). *)
          | Ast.Div -> spf "(%s / %s)" fa fb
          | Ast.Mod -> spf "(%s %% %s)" fa fb
          | _ -> assert false
        in
        T (CI (code, Vtype.Int))
      | (CF _ | CI (_, Vtype.Int)), (CF _ | CI (_, Vtype.Int)) ->
        let fa = as_float ta and fb = as_float tb in
        let code =
          match op with
          | Ast.Add -> spf "(%s + %s)" fa fb
          | Ast.Sub -> spf "(%s - %s)" fa fb
          | Ast.Mul -> spf "(%s * %s)" fa fb
          | Ast.Div -> spf "(%s / %s)" fa fb
          | Ast.Mod -> spf "fmod(%s, %s)" fa fb (* = OCaml Float.rem *)
          | _ -> assert false
        in
        T (CF code)
      | _ ->
        unsupported "arithmetic on %s and %s (C)"
          (Vtype.to_string (vty_of ta))
          (Vtype.to_string (vty_of tb)))
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      match (ta, tb) with
      | CI (fa, Vtype.String), CI (fb, Vtype.String) -> (
        match op with
        | Ast.Eq -> T (CB (spf "(%s == %s)" fa fb))
        | Ast.Ne -> T (CB (spf "(%s != %s)" fa fb))
        | _ ->
          (* Ordering decodes: dict codes are not order-preserving. *)
          c.needs_dict <- true;
          T (CB (spf "(lq_strcmp(db, dofs, %s, %s) %s 0)" fa fb (cmp_op op))))
      | CI (fa, ty1), CI (fb, ty2) when Vtype.equal ty1 ty2 ->
        T (CB (spf "(%s %s %s)" fa (cmp_op op) fb))
      | (CF _ | CI (_, Vtype.Int)), (CF _ | CI (_, Vtype.Int)) ->
        (* NaN-free data: IEEE compare agrees with OCaml Float.compare. *)
        let fa = as_float ta and fb = as_float tb in
        T (CB (spf "(%s %s %s)" fa (cmp_op op) fb))
      | CB fa, CB fb -> T (CB (spf "(%s %s %s)" fa (cmp_op op) fb))
      | _ ->
        unsupported "comparison between %s and %s (C)"
          (Vtype.to_string (vty_of ta))
          (Vtype.to_string (vty_of tb)))
    | Ast.And | Ast.Or -> assert false
  and compile_call f args : cexp =
    let force_string e = coerce_like c (go e) ~like:(CI ("0", Vtype.String)) in
    let force_date e = coerce_like c (go e) ~like:(CI ("0", Vtype.Date)) in
    let string_code t =
      match t with
      | CI (code, Vtype.String) -> code
      | _ -> unsupported "expected a string-typed C expression"
    in
    match (f, args) with
    | ( (Ast.Starts_with | Ast.Ends_with | Ast.Contains | Ast.Like),
        [ subject; patt ] ) -> (
      c.needs_dict <- true;
      let fs = string_code (force_string subject) in
      let pattern_of s =
        match f with
        | Ast.Starts_with -> s ^ "%"
        | Ast.Ends_with -> "%" ^ s
        | Ast.Contains -> "%" ^ s ^ "%"
        | _ -> s
      in
      match static_string patt with
      | Some s ->
        let pattern = pattern_of s in
        CB
          (spf "lq_like_code(db, dofs, %s, %d, 0, 0, %s)"
             (c_string_lit pattern) (String.length pattern) fs)
      | None ->
        (* pattern ^ "%" ≡ matcher with an implicit trailing %, and
           "%" ^ pattern ≡ an implicit leading % — the affixes without
           runtime string concatenation. *)
        let lead, trail =
          match f with
          | Ast.Starts_with -> (0, 1)
          | Ast.Ends_with -> (1, 0)
          | Ast.Contains -> (1, 1)
          | _ -> (0, 0)
        in
        let fp = string_code (force_string patt) in
        CB (spf "lq_like_dyn(db, dofs, %s, %d, %d, %s)" fp lead trail fs))
    | (Ast.Lower | Ast.Upper), _ ->
      unsupported "string interning call (the C dictionary is read-only)"
    | Ast.Length, [ e ] ->
      c.needs_dict <- true;
      let fs = string_code (force_string e) in
      CI (spf "((int64_t)(dofs[%s + 1] - dofs[%s]))" fs fs, Vtype.Int)
    | Ast.Abs, [ e ] -> (
      match force c (go e) with
      | CI (code, Vtype.Int) -> CI (spf "lq_iabs(%s)" code, Vtype.Int)
      | CF code -> CF (spf "fabs(%s)" code)
      | _ -> unsupported "Abs on non-numeric (C)")
    | Ast.Year, [ e ] -> (
      match force_date e with
      | CI (code, Vtype.Date) -> CI (spf "lq_year(%s)" code, Vtype.Int)
      | _ -> unsupported "Year on non-date (C)")
    | Ast.Add_days, [ d; n ] -> (
      match (force_date d, force c (go n)) with
      | CI (fd, Vtype.Date), CI (fn, Vtype.Int) ->
        CI (spf "(%s + %s)" fd fn, Vtype.Date)
      | _ -> unsupported "AddDays arguments (C)")
    | _, _ -> unsupported "call %s (C)" (Lq_expr.Pretty.func_name f)
  in
  force c (go expr)

(* --- plan walking, mirroring Nplan.compile_plan --------------------- *)

let bind1 (l : Ast.lambda) elem =
  match l.Ast.params with
  | [ p ] -> [ (p, elem) ]
  | _ -> unsupported "lambda arity (C)"

let compile_key_parts c ~env (body : Ast.expr) : (string * cexp) list =
  match body with
  | Ast.Record_of fields ->
    List.map (fun (n, e) -> (n, compile c ~env e)) fields
  | e -> [ (Nexpr.scalar_field, compile c ~env e) ]

let elem_of_body c ~env (body : Ast.expr) : celem =
  match body with
  | Ast.Record_of fields ->
    CFields (List.map (fun (n, e) -> (n, compile c ~env e)) fields)
  | Ast.Var name when List.mem_assoc name env -> List.assoc name env
  | e -> CScalar (compile c ~env e)

let stops_cond stops = String.concat "" (List.map (fun s -> " && !" ^ s) stops)

(* Typed spill columns: what Nplan.spill materializes per loop segment.
   Bool values land as int64 0/1 and read back typed Bool — the same
   Rowstore round-trip, where a B never survives a spill. *)
type spill_col = {
  sc_name : string;
  sc_var : string;
  sc_float : bool;
  sc_vty : Vtype.t;
  sc_val : string;  (** C value expression, valid at the input sink *)
}

let spill_cols pfx elem : spill_col list =
  List.mapi
    (fun i (name, t) ->
      let var = spf "%s_c%d" pfx i in
      match t with
      | CF code ->
        {
          sc_name = name;
          sc_var = var;
          sc_float = true;
          sc_vty = Vtype.Float;
          sc_val = code;
        }
      | CI (code, ty) ->
        {
          sc_name = name;
          sc_var = var;
          sc_float = false;
          sc_vty = ty;
          sc_val = code;
        }
      | CB code ->
        {
          sc_name = name;
          sc_var = var;
          sc_float = false;
          sc_vty = Vtype.Bool;
          sc_val = spf "((int64_t)%s)" code;
        })
    (celem_fields elem)

let declare_spill c cols =
  List.iter
    (fun sc ->
      let ty = if sc.sc_float then "double" else "int64_t" in
      line c "%s *%s = NULL; int64_t %s_cap = 0;" ty sc.sc_var sc.sc_var)
    cols

let write_spill c cols ~at =
  List.iter
    (fun sc ->
      let ty = if sc.sc_float then "double" else "int64_t" in
      line c "%s = (%s *)lq_grow(&A, %s, &%s_cap, %s, sizeof(%s));" sc.sc_var
        ty sc.sc_var sc.sc_var at ty;
      line c "%s[%s] = %s;" sc.sc_var at sc.sc_val)
    cols

let spill_elem cols ~at : celem =
  CFields
    (List.map
       (fun sc ->
         let code = spf "%s[%s]" sc.sc_var at in
         (sc.sc_name, if sc.sc_float then CF code else CI (code, sc.sc_vty)))
       cols)

let rec gen c (p : P.t) ~stops : celem * ((unit -> unit) -> unit) =
  match p.P.op with
  | P.Scan s ->
    let table = Catalog.table c.cat s.P.table in
    let store = Catalog.store table in
    let layout = Lq_storage.Rowstore.layout store in
    let width = Layout.row_width layout in
    let k = scan_index c s.P.table in
    let iv = fresh c "i" and rv = fresh c "r" in
    ( CRow (rv, layout),
      fun body ->
        line c "for (int64_t %s = 0; %s < nrows[%d]%s; %s++) {" iv iv k
          (stops_cond stops) iv;
        push c;
        line c "const unsigned char *%s = srcs[%d] + %s * %d;" rv k iv width;
        body ();
        pop c;
        line c "}" )
  | P.Filter (input, preds) ->
    let elem, run = gen c input ~stops in
    ( elem,
      fun body ->
        run (fun () ->
            (* Conjuncts arrive cheapest-first; && keeps that order. *)
            let conds =
              List.map
                (fun (pr : P.pred) ->
                  as_bool
                    (compile c
                       ~env:(bind1 pr.P.lambda elem)
                       pr.P.lambda.Ast.body))
                preds
            in
            match conds with
            | [] -> body ()
            | conds ->
              line c "if (%s) {" (String.concat " && " conds);
              push c;
              body ();
              pop c;
              line c "}") )
  | P.Project (input, sel) ->
    let elem, run = gen c input ~stops in
    let env = bind1 sel elem in
    (elem_of_body c ~env sel.Ast.body, run)
  | P.Join j -> gen_join c j ~stops
  | P.Aggregate a -> gen_group c a ~stops
  | P.Sort (input, keys) -> gen_sort c input keys None ~stops
  | P.Top_k { input; keys; limit } ->
    let lim = as_int (compile c ~env:[] limit) in
    gen_sort c input keys (Some lim) ~stops
  | P.Limit (input, n) ->
    let flag = fresh c "st" in
    let elem, run = gen c input ~stops:(stops @ [ flag ]) in
    let lim = as_int (compile c ~env:[] n) in
    let limv = fresh c "lim" and emv = fresh c "em" in
    ( elem,
      fun body ->
        line c "int %s = 0;" flag;
        line c "int64_t %s = 0;" emv;
        line c "int64_t %s = %s;" limv lim;
        line c "if (%s > 0) {" limv;
        push c;
        run (fun () ->
            body ();
            line c "%s++;" emv;
            line c "if (%s >= %s) %s = 1;" emv limv flag);
        pop c;
        line c "}" )
  | P.Offset (input, n) ->
    let elem, run = gen c input ~stops in
    let off = as_int (compile c ~env:[] n) in
    let offv = fresh c "off" and seenv = fresh c "seen" in
    ( elem,
      fun body ->
        line c "int64_t %s = %s;" offv off;
        line c "int64_t %s = 0;" seenv;
        run (fun () ->
            line c "%s++;" seenv;
            line c "if (%s > %s) {" seenv offv;
            push c;
            body ();
            pop c;
            line c "}") )
  | P.Distinct input ->
    let elem, run = gen c input ~stops in
    let parts = List.map (fun (_, t) -> key_part t) (celem_fields elem) in
    let np = List.length parts in
    let pfx = fresh c "d" in
    ( elem,
      fun body ->
        line c "lq_ht %s_h;" pfx;
        line c "lq_ht_init(&%s_h, &A, %d, 256);" pfx np;
        run (fun () ->
            line c "int64_t %s_kp[%d];" pfx np;
            List.iteri
              (fun i part -> line c "%s_kp[%d] = %s;" pfx i part)
              parts;
            line c "int64_t %s_b = %s_h.count;" pfx pfx;
            line c "(void)lq_ht_insert(&%s_h, %s_kp);" pfx pfx;
            line c "if (%s_h.count > %s_b) {" pfx pfx;
            push c;
            body ();
            pop c;
            line c "}") )

and gen_join c (j : P.join) ~stops : celem * ((unit -> unit) -> unit) =
  (* Always a hash join, like Nplan: build the right side into
     attach-order chains, probe from the left. Chain cells store row+1;
     0 marks empty, so lq_grow's zero-fill initializes them. *)
  let lelem, lrun = gen c j.P.left ~stops in
  let relem, rrun = gen c j.P.right ~stops in
  let pfx = fresh c "j" in
  let rkey =
    compile_key_parts c ~env:(bind1 j.P.right_key relem) j.P.right_key.Ast.body
  in
  let lkey =
    compile_key_parts c ~env:(bind1 j.P.left_key lelem) j.P.left_key.Ast.body
  in
  let np = List.length rkey in
  if List.length lkey <> np then unsupported "join key arity mismatch (C)";
  let cols = spill_cols pfx relem in
  let rcur = spf "%s_r" pfx in
  let selem = spill_elem cols ~at:rcur in
  let renv =
    match j.P.result.Ast.params with
    | [ pl; pr ] -> [ (pl, lelem); (pr, selem) ]
    | _ -> unsupported "join result arity (C)"
  in
  let elem = elem_of_body c ~env:renv j.P.result.Ast.body in
  ( elem,
    fun body ->
      line c "lq_ht %s_h;" pfx;
      line c "lq_ht_init(&%s_h, &A, %d, 1024);" pfx np;
      declare_spill c cols;
      line c "int64_t %s_n = 0;" pfx;
      line c "int64_t *%s_head = NULL; int64_t %s_head_cap = 0;" pfx pfx;
      line c "int64_t *%s_tail = NULL; int64_t %s_tail_cap = 0;" pfx pfx;
      line c "int64_t *%s_next = NULL; int64_t %s_next_cap = 0;" pfx pfx;
      rrun (fun () ->
          line c "int64_t %s_kp[%d];" pfx np;
          List.iteri
            (fun i (_, t) -> line c "%s_kp[%d] = %s;" pfx i (key_part t))
            rkey;
          write_spill c cols ~at:(spf "%s_n" pfx);
          line c "int64_t %s_s = lq_ht_insert(&%s_h, %s_kp);" pfx pfx pfx;
          line c
            "%s_head = (int64_t *)lq_grow(&A, %s_head, &%s_head_cap, %s_s, \
             sizeof(int64_t));"
            pfx pfx pfx pfx;
          line c
            "%s_tail = (int64_t *)lq_grow(&A, %s_tail, &%s_tail_cap, %s_s, \
             sizeof(int64_t));"
            pfx pfx pfx pfx;
          line c
            "%s_next = (int64_t *)lq_grow(&A, %s_next, &%s_next_cap, %s_n, \
             sizeof(int64_t));"
            pfx pfx pfx pfx;
          line c "if (%s_head[%s_s] == 0) %s_head[%s_s] = %s_n + 1;" pfx pfx
            pfx pfx pfx;
          line c "else %s_next[%s_tail[%s_s] - 1] = %s_n + 1;" pfx pfx pfx pfx;
          line c "%s_tail[%s_s] = %s_n + 1;" pfx pfx pfx;
          line c "%s_next[%s_n] = 0;" pfx pfx;
          line c "%s_n++;" pfx);
      lrun (fun () ->
          line c "int64_t %s_lkp[%d];" pfx np;
          List.iteri
            (fun i (_, t) -> line c "%s_lkp[%d] = %s;" pfx i (key_part t))
            lkey;
          line c "int64_t %s_fs = lq_ht_find(&%s_h, %s_lkp);" pfx pfx pfx;
          line c "if (%s_fs >= 0) {" pfx;
          push c;
          line c
            "for (int64_t %s_ch = %s_head[%s_fs]; %s_ch != 0%s; %s_ch = \
             %s_next[%s_ch - 1]) {"
            pfx pfx pfx pfx (stops_cond stops) pfx pfx pfx;
          push c;
          line c "const int64_t %s = %s_ch - 1;" rcur pfx;
          body ();
          pop c;
          line c "}";
          pop c;
          line c "}") )

and gen_group c (a : P.aggregate) ~stops : celem * ((unit -> unit) -> unit) =
  let elem_in, run_in = gen c a.P.input ~stops in
  let result =
    match a.P.group_result with
    | Some r -> r
    | None ->
      unsupported "GroupBy without result selector: group objects are not flat"
  in
  let gvar =
    match result.Ast.params with
    | [ p ] -> p
    | _ -> unsupported "group result arity (C)"
  in
  if not a.P.fused then
    unsupported "unfused aggregation (the C backend always fuses)";
  let pfx = fresh c "g" in
  let key_fields =
    compile_key_parts c ~env:(bind1 a.P.key elem_in) a.P.key.Ast.body
  in
  let np = List.length key_fields in
  let slotv = spf "%s_s" pfx in
  (* Key readers for the output phase: parts live in the dense keys
     array, typed as the build side computed them. *)
  let key_reader off (t : cexp) : cexp =
    let part = spf "%s_h.keys[%s * %d + %d]" pfx slotv np off in
    match t with
    | CF _ -> CF (spf "lq_keyf(%s)" part)
    | CB _ -> CB (spf "(%s != 0)" part)
    | CI (_, ty) -> CI (part, ty)
  in
  let gkey_elem =
    match a.P.key.Ast.body with
    | Ast.Record_of _ ->
      CFields (List.mapi (fun off (n, t) -> (n, key_reader off t)) key_fields)
    | _ ->
      let _, t = List.hd key_fields in
      CScalar (key_reader 0 t)
  in
  let counts = spf "%s_cnt" pfx in
  let usv = spf "%s_us" pfx and freshv = spf "%s_fresh" pfx in
  (* Accumulators mirror Nplan's: [decl] emits the state array, [update]
     the per-row fold at slot [usv], the third field reads at [slotv]
     during output. *)
  let make_acc idx (kind : Ast.agg) (sel : Ast.lambda option) =
    let selected () =
      match sel with
      | None -> (
        match celem_fields elem_in with
        | [ (_, t) ] -> t
        | _ -> unsupported "aggregate without selector over a row (C)")
      | Some (l : Ast.lambda) -> (
        match l.Ast.params with
        | [ p ] -> compile c ~env:[ (p, elem_in) ] l.Ast.body
        | _ -> unsupported "aggregate selector arity (C)")
    in
    let av = spf "%s_a%d" pfx idx in
    let decl_arr float () =
      let ty = if float then "double" else "int64_t" in
      line c "%s *%s = NULL; int64_t %s_cap = 0;" ty av av
    in
    let grow float =
      let ty = if float then "double" else "int64_t" in
      line c "%s = (%s *)lq_grow(&A, %s, &%s_cap, %s, sizeof(%s));" av ty av
        av usv ty
    in
    match kind with
    | Ast.Count ->
      ((fun () -> ()), (fun () -> ()), CI (spf "%s[%s]" counts slotv, Vtype.Int))
    | Ast.Sum -> (
      match selected () with
      | CF code ->
        ( decl_arr true,
          (fun () ->
            grow true;
            line c "if (%s) %s[%s] = %s; else %s[%s] += %s;" freshv av usv
              code av usv code),
          CF (spf "%s[%s]" av slotv) )
      | CI (code, Vtype.Int) ->
        ( decl_arr false,
          (fun () ->
            grow false;
            line c "if (%s) %s[%s] = %s; else %s[%s] += %s;" freshv av usv
              code av usv code),
          CI (spf "%s[%s]" av slotv, Vtype.Int) )
      | _ -> unsupported "Sum over non-numeric (C)")
    | Ast.Avg ->
      let code = as_float (selected ()) in
      ( decl_arr true,
        (fun () ->
          grow true;
          line c "if (%s) %s[%s] = %s; else %s[%s] += %s;" freshv av usv code
            av usv code),
        CF (spf "(%s[%s] / (double)%s[%s])" av slotv counts slotv) )
    | Ast.Min | Ast.Max -> (
      let keep = match kind with Ast.Min -> "<" | _ -> ">" in
      match selected () with
      | CF code ->
        let tv = spf "%s_v%d" pfx idx in
        ( decl_arr true,
          (fun () ->
            grow true;
            line c "double %s = %s;" tv code;
            line c "if (%s || lq_fcmp(%s, %s[%s]) %s 0) %s[%s] = %s;" freshv
              tv av usv keep av usv tv),
          CF (spf "%s[%s]" av slotv) )
      | CI (code, Vtype.String) ->
        c.needs_dict <- true;
        let tv = spf "%s_v%d" pfx idx in
        ( decl_arr false,
          (fun () ->
            grow false;
            line c "int64_t %s = %s;" tv code;
            line c
              "if (%s || lq_strcmp(db, dofs, %s, %s[%s]) %s 0) %s[%s] = %s;"
              freshv tv av usv keep av usv tv),
          CI (spf "%s[%s]" av slotv, Vtype.String) )
      | CI (code, ty) ->
        let tv = spf "%s_v%d" pfx idx in
        ( decl_arr false,
          (fun () ->
            grow false;
            line c "int64_t %s = %s;" tv code;
            line c "if (%s || %s %s %s[%s]) %s[%s] = %s;" freshv tv keep av
              usv av usv tv),
          CI (spf "%s[%s]" av slotv, ty) )
      | CB _ -> unsupported "Min/Max over bool (C)")
  in
  let reg = P.Registry.of_aggregate a in
  let accs =
    Array.init (P.Registry.length reg) (fun i ->
        let s = P.Registry.spec reg i in
        make_acc i s.P.agg s.P.sel)
  in
  let on_agg kind src sel =
    match src with
    | Ast.Var v when String.equal v gvar ->
      let _, _, out = accs.(P.Registry.next reg kind sel) in
      out
    | _ -> unsupported "aggregate over a non-group source (C)"
  in
  let body_ast = Nplan.rewrite_gkey gvar result.Ast.body in
  let env = [ (Nplan.gkey_var, gkey_elem) ] in
  let compile_result e = compile c ~env ~on_agg e in
  let elem =
    match body_ast with
    | Ast.Record_of fields ->
      CFields (List.map (fun (n, e) -> (n, compile_result e)) fields)
    | e -> CScalar (compile_result e)
  in
  ( elem,
    fun body ->
      line c "lq_ht %s_h;" pfx;
      line c "lq_ht_init(&%s_h, &A, %d, 256);" pfx np;
      line c "int64_t *%s = NULL; int64_t %s_cap = 0;" counts counts;
      Array.iter (fun (decl, _, _) -> decl ()) accs;
      run_in (fun () ->
          line c "int64_t %s_kp[%d];" pfx np;
          List.iteri
            (fun i (_, t) -> line c "%s_kp[%d] = %s;" pfx i (key_part t))
            key_fields;
          line c "int64_t %s_b = %s_h.count;" pfx pfx;
          line c "int64_t %s = lq_ht_insert(&%s_h, %s_kp);" usv pfx pfx;
          line c "int %s = %s_h.count > %s_b;" freshv pfx pfx;
          line c
            "%s = (int64_t *)lq_grow(&A, %s, &%s_cap, %s, sizeof(int64_t));"
            counts counts counts usv;
          Array.iter (fun (_, update, _) -> update ()) accs;
          line c "%s[%s] += 1;" counts usv);
      line c "for (int64_t %s = 0; %s < %s_h.count%s; %s++) {" slotv slotv pfx
        (stops_cond stops) slotv;
      push c;
      body ();
      pop c;
      line c "}" )

and gen_sort c (input : P.t) keys limit ~stops :
    celem * ((unit -> unit) -> unit) =
  let elem_in, run_in = gen c input ~stops in
  let pfx = fresh c "s" in
  let cols = spill_cols pfx elem_in in
  let rcur = spf "%s_r" pfx in
  let elem = spill_elem cols ~at:rcur in
  (* Per-key extraction columns; the comparator mirrors Nplan's: float
     three-way / dict-decoded string compare / integer-image compare,
     direction sign, then the row-index tiebreak for a total order. *)
  let keycols =
    List.mapi
      (fun i (k : Ast.sort_key) ->
        let t = compile c ~env:(bind1 k.Ast.by elem_in) k.Ast.by.Ast.body in
        let sign = match k.Ast.dir with Ast.Asc -> 1 | Ast.Desc -> -1 in
        let var = spf "%s_k%d" pfx i in
        match t with
        | CF code -> (var, `F, sign, code)
        | CI (code, Vtype.String) ->
          c.needs_dict <- true;
          (var, `S, sign, code)
        | t -> (var, `K, sign, key_part t))
      keys
  in
  (* The comparator is a function over an explicit context struct, so
     the generated object stays reentrant across Domains. *)
  let sctx = spf "lq_sctx_%s" pfx and scmp = spf "lq_scmp_%s" pfx in
  let aux = Buffer.create 256 in
  Buffer.add_string aux (spf "struct %s {\n" sctx);
  Buffer.add_string aux "  const unsigned char *db;\n  const int32_t *dofs;\n";
  List.iter
    (fun (var, kind, _, _) ->
      Buffer.add_string aux
        (spf "  const %s *%s;\n"
           (if kind = `F then "double" else "int64_t")
           var))
    keycols;
  Buffer.add_string aux "};\n";
  Buffer.add_string aux
    (spf "static int %s(void *v, int64_t i, int64_t j) {\n" scmp);
  Buffer.add_string aux
    (spf "  const struct %s *c = (const struct %s *)v;\n  int r;\n" sctx sctx);
  List.iter
    (fun (var, kind, sign, _) ->
      let cmp =
        match kind with
        | `F -> spf "lq_fcmp(c->%s[i], c->%s[j])" var var
        | `S -> spf "lq_strcmp(c->db, c->dofs, c->%s[i], c->%s[j])" var var
        | `K -> spf "lq_icmp(c->%s[i], c->%s[j])" var var
      in
      Buffer.add_string aux
        (spf "  r = %s; if (r) return %s;\n" cmp
           (if sign = 1 then "r" else "-r")))
    keycols;
  Buffer.add_string aux "  return lq_icmp(i, j);\n}\n";
  Buffer.add_buffer c.aux aux;
  ( elem,
    fun body ->
      declare_spill c cols;
      List.iter
        (fun (var, kind, _, _) ->
          let ty = if kind = `F then "double" else "int64_t" in
          line c "%s *%s = NULL; int64_t %s_cap = 0;" ty var var)
        keycols;
      line c "int64_t %s_n = 0;" pfx;
      run_in (fun () ->
          write_spill c cols ~at:(spf "%s_n" pfx);
          List.iter
            (fun (var, kind, _, code) ->
              let ty = if kind = `F then "double" else "int64_t" in
              line c "%s = (%s *)lq_grow(&A, %s, &%s_cap, %s_n, sizeof(%s));"
                var ty var var pfx ty;
              line c "%s[%s_n] = %s;" var pfx code)
            keycols;
          line c "%s_n++;" pfx);
      (* Fill the context struct only now: lq_grow moves column bases. *)
      line c "struct %s %s_ctx;" sctx pfx;
      line c "%s_ctx.db = db; %s_ctx.dofs = dofs;" pfx pfx;
      List.iter
        (fun (var, _, _, _) -> line c "%s_ctx.%s = %s;" pfx var var)
        keycols;
      line c
        "int64_t *%s_idx = (int64_t *)lq_alloc(&A, (%s_n ? %s_n : 1) * \
         (int64_t)sizeof(int64_t));"
        pfx pfx pfx;
      line c "for (int64_t %s_i = 0; %s_i < %s_n; %s_i++) %s_idx[%s_i] = %s_i;"
        pfx pfx pfx pfx pfx pfx pfx;
      line c "lq_sort_idx(&A, %s_idx, %s_n, %s, &%s_ctx);" pfx pfx scmp pfx;
      (match limit with
      | None -> line c "int64_t %s_out = %s_n;" pfx pfx
      | Some lim ->
        (* Bounded heap ≡ full sort + take k under a total order. *)
        line c "int64_t %s_k = %s;" pfx lim;
        line c "if (%s_k < 0) %s_k = 0;" pfx pfx;
        line c "int64_t %s_out = %s_k < %s_n ? %s_k : %s_n;" pfx pfx pfx pfx
          pfx);
      line c "for (int64_t %s_o = 0; %s_o < %s_out%s; %s_o++) {" pfx pfx pfx
        (stops_cond stops) pfx;
      push c;
      line c "const int64_t %s = %s_idx[%s_o];" rcur pfx pfx;
      body ();
      pop c;
      line c "}" )

(* --- the fixed C runtime prelude ------------------------------------ *)

let prelude =
  {|#include <stdint.h>
#include <stddef.h>
#include <string.h>
#include <stdlib.h>
#include <setjmp.h>
#include <math.h>

#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__)
#error "lq_query: row pages are little-endian (Fbuf); big-endian hosts unsupported"
#endif

/* Unaligned little-endian row-page accessors: layouts are packed, so no
   field is guaranteed aligned — memcpy is the portable unaligned read. */
static inline int64_t rd_i32(const unsigned char *p) { int32_t v; memcpy(&v, p, 4); return (int64_t)v; }
static inline int64_t rd_i64(const unsigned char *p) { int64_t v; memcpy(&v, p, 8); return v; }
static inline double rd_f64(const unsigned char *p) { double v; memcpy(&v, p, 8); return v; }
static inline void wr_i32(unsigned char *p, int64_t v) { int32_t x = (int32_t)v; memcpy(p, &x, 4); }
static inline void wr_i64(unsigned char *p, int64_t v) { memcpy(p, &v, 8); }
static inline void wr_f64(unsigned char *p, double v) { memcpy(p, &v, 8); }

static inline int64_t lq_fkey(double x) { int64_t v; memcpy(&v, &x, 8); return v; }
static inline double lq_keyf(int64_t v) { double x; memcpy(&x, &v, 8); return x; }
/* IEEE three-way compare = OCaml Float.compare on NaN-free data. */
static inline int lq_fcmp(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
static inline int lq_icmp(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
static inline int64_t lq_iabs(int64_t x) { return x < 0 ? -x : x; }

/* Per-call arena: every allocation is tracked and freed at the single
   exit; malloc failure longjmps there and the call returns -1. */
typedef struct { void **ptrs; int64_t n, cap; jmp_buf env; } lq_arena;

static void *lq_alloc(lq_arena *A, int64_t sz) {
  if (sz < 1) sz = 1;
  if (A->n >= A->cap) {
    int64_t nc = A->cap ? A->cap * 2 : 64;
    void **np = (void **)realloc(A->ptrs, (size_t)nc * sizeof(void *));
    if (!np) longjmp(A->env, 1);
    A->ptrs = np; A->cap = nc;
  }
  void *p = malloc((size_t)sz);
  if (!p) longjmp(A->env, 1);
  A->ptrs[A->n++] = p;
  return p;
}

/* Grow a typed array to hold index [need]; fresh space is zeroed (the
   join chain heads rely on that). The old buffer stays in the arena
   until the exit free. */
static void *lq_grow(lq_arena *A, void *arr, int64_t *cap, int64_t need, int64_t esz) {
  if (need < *cap) return arr;
  int64_t nc = *cap ? *cap : 512;
  while (nc <= need) nc *= 2;
  void *p = lq_alloc(A, nc * esz);
  if (arr) memcpy(p, arr, (size_t)(*cap * esz));
  memset((char *)p + *cap * esz, 0, (size_t)((nc - *cap) * esz));
  *cap = nc;
  return p;
}

static void lq_arena_free(lq_arena *A) {
  for (int64_t i = 0; i < A->n; i++) free(A->ptrs[i]);
  free(A->ptrs);
  A->ptrs = NULL; A->n = 0; A->cap = 0;
}

/* Byte-lexicographic dictionary-code compare = OCaml String.compare. */
static int lq_strcmp(const unsigned char *db, const int32_t *dofs, int64_t a, int64_t b) {
  if (a == b) return 0;
  int32_t a0 = dofs[a], a1 = dofs[a + 1], b0 = dofs[b], b1 = dofs[b + 1];
  int64_t la = a1 - a0, lb = b1 - b0, m = la < lb ? la : lb;
  int r = memcmp(db + a0, db + b0, (size_t)m);
  if (r) return r < 0 ? -1 : 1;
  return la < lb ? -1 : (la > lb ? 1 : 0);
}

/* Scalar.like_match, verbatim semantics: % any run, _ one char,
   backtracking. [trail] treats pattern end as an implicit trailing %;
   [lead] tries every start offset — the StartsWith/EndsWith/Contains
   affixes without runtime pattern concatenation. */
static int lq_like_go(const char *p, int64_t np, const char *s, int64_t ns,
                      int64_t pi, int64_t si, int trail) {
  if (pi == np) return trail ? 1 : si == ns;
  char ch = p[pi];
  if (ch == '%') {
    for (int64_t j = si; j <= ns; j++)
      if (lq_like_go(p, np, s, ns, pi + 1, j, trail)) return 1;
    return 0;
  }
  if (si >= ns) return 0;
  if (ch == '_' || ch == s[si]) return lq_like_go(p, np, s, ns, pi + 1, si + 1, trail);
  return 0;
}

static int lq_like(const char *p, int64_t np, int lead, int trail,
                   const char *s, int64_t ns) {
  if (lead) {
    for (int64_t j = 0; j <= ns; j++)
      if (lq_like_go(p, np, s + j, ns - j, 0, 0, trail)) return 1;
    return 0;
  }
  return lq_like_go(p, np, s, ns, 0, 0, trail);
}

static int lq_like_code(const unsigned char *db, const int32_t *dofs,
                        const char *p, int64_t np, int lead, int trail, int64_t sc) {
  int32_t a = dofs[sc], b = dofs[sc + 1];
  return lq_like(p, np, lead, trail, (const char *)db + a, (int64_t)(b - a));
}

static int lq_like_dyn(const unsigned char *db, const int32_t *dofs,
                       int64_t pc, int lead, int trail, int64_t sc) {
  int32_t a = dofs[pc], b = dofs[pc + 1];
  return lq_like_code(db, dofs, (const char *)db + a, (int64_t)(b - a), lead, trail, sc);
}

/* Date.year: Hinnant civil-from-days, year component only. */
static int64_t lq_year(int64_t z) {
  z += 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  int64_t doe = z - era * 146097;
  int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = yoe + era * 400;
  int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  int64_t mp = (5 * doy + 2) / 153;
  int64_t m = mp < 10 ? mp + 3 : mp - 9;
  return m <= 2 ? y + 1 : y;
}

/* Flat open-addressing hash table on composite int64 keys — dense slots
   0,1,2,... in first-touch insertion order, exactly like the OCaml Ht,
   so grouped/joined/distinct output order is identical regardless of
   the hash function. Buckets hold slot+1; 0 is empty. */
typedef struct {
  lq_arena *A;
  int np;
  int64_t cap, count, kcap;
  int64_t *tab;   /* cap buckets */
  int64_t *keys;  /* kcap * np dense key parts */
} lq_ht;

static uint64_t lq_ht_hash(const int64_t *parts, int np) {
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < np; i++) {
    h ^= (uint64_t)parts[i];
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return h;
}

static void lq_ht_init(lq_ht *h, lq_arena *A, int np, int64_t hint) {
  int64_t cap = 16;
  while (cap < hint * 2) cap <<= 1;
  h->A = A; h->np = np; h->cap = cap; h->count = 0; h->kcap = 0;
  h->tab = (int64_t *)lq_alloc(A, cap * (int64_t)sizeof(int64_t));
  memset(h->tab, 0, (size_t)cap * sizeof(int64_t));
  h->keys = NULL;
}

static int lq_ht_eq(const lq_ht *h, int64_t slot, const int64_t *parts) {
  const int64_t *k = h->keys + slot * h->np;
  for (int i = 0; i < h->np; i++)
    if (k[i] != parts[i]) return 0;
  return 1;
}

static int64_t lq_ht_find(const lq_ht *h, const int64_t *parts) {
  uint64_t mask = (uint64_t)h->cap - 1;
  uint64_t b = lq_ht_hash(parts, h->np) & mask;
  for (;;) {
    int64_t v = h->tab[b];
    if (v == 0) return -1;
    if (lq_ht_eq(h, v - 1, parts)) return v - 1;
    b = (b + 1) & mask;
  }
}

static void lq_ht_rehash(lq_ht *h) {
  int64_t ncap = h->cap * 2;
  int64_t *nt = (int64_t *)lq_alloc(h->A, ncap * (int64_t)sizeof(int64_t));
  memset(nt, 0, (size_t)ncap * sizeof(int64_t));
  uint64_t mask = (uint64_t)ncap - 1;
  for (int64_t s = 0; s < h->count; s++) {
    uint64_t b = lq_ht_hash(h->keys + s * h->np, h->np) & mask;
    while (nt[b] != 0) b = (b + 1) & mask;
    nt[b] = s + 1;
  }
  h->tab = nt; /* the old bucket array stays in the arena */
  h->cap = ncap;
}

static int64_t lq_ht_insert(lq_ht *h, const int64_t *parts) {
  int64_t f = lq_ht_find(h, parts);
  if (f >= 0) return f;
  if ((h->count + 1) * 2 > h->cap) lq_ht_rehash(h);
  if (h->count >= h->kcap) {
    int64_t nk = h->kcap ? h->kcap * 2 : 256;
    int64_t *nkeys = (int64_t *)lq_alloc(h->A, nk * h->np * (int64_t)sizeof(int64_t));
    if (h->keys) memcpy(nkeys, h->keys, (size_t)(h->count * h->np) * sizeof(int64_t));
    h->keys = nkeys; h->kcap = nk;
  }
  memcpy(h->keys + h->count * h->np, parts, (size_t)h->np * sizeof(int64_t));
  uint64_t mask = (uint64_t)h->cap - 1;
  uint64_t b = lq_ht_hash(parts, h->np) & mask;
  while (h->tab[b] != 0) b = (b + 1) & mask;
  h->tab[b] = h->count + 1;
  return h->count++;
}

/* Merge sort over an index array; the comparators end with the index
   tiebreak, so the order is total and stability is moot. */
typedef int (*lq_cmp_fn)(void *, int64_t, int64_t);

static void lq_msort(int64_t *a, int64_t *t, int64_t lo, int64_t hi,
                     lq_cmp_fn cmp, void *ctx) {
  if (hi - lo < 2) return;
  int64_t mid = lo + (hi - lo) / 2;
  lq_msort(a, t, lo, mid, cmp, ctx);
  lq_msort(a, t, mid, hi, cmp, ctx);
  int64_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) t[k++] = cmp(ctx, a[i], a[j]) <= 0 ? a[i++] : a[j++];
  while (i < mid) t[k++] = a[i++];
  while (j < hi) t[k++] = a[j++];
  memcpy(a + lo, t + lo, (size_t)(hi - lo) * sizeof(int64_t));
}

static void lq_sort_idx(lq_arena *A, int64_t *idx, int64_t n, lq_cmp_fn cmp, void *ctx) {
  if (n < 2) return;
  int64_t *t = (int64_t *)lq_alloc(A, n * (int64_t)sizeof(int64_t));
  lq_msort(idx, t, 0, n, cmp, ctx);
}

|}

let header =
  {|int64_t lq_query(const unsigned char **srcs, const int64_t *nrows,
                 const int64_t *ip, const double *fp,
                 const unsigned char *db, const int32_t *dofs,
                 unsigned char *out, int64_t cap)
{
  lq_arena A; A.ptrs = NULL; A.n = 0; A.cap = 0;
  int64_t lq_total = 0;
  if (setjmp(A.env)) { lq_arena_free(&A); return -1; }
  (void)srcs; (void)nrows; (void)ip; (void)fp; (void)db; (void)dofs;
|}

let footer = {|  lq_arena_free(&A);
  return lq_total;
}
|}

(* --- entry points ---------------------------------------------------- *)

let emit_plan cat (plan : P.t) : program =
  let c =
    {
      body = Buffer.create 4096;
      aux = Buffer.create 256;
      indent = 1;
      freshc = 0;
      islots = [];
      fslots = [];
      scans = [];
      needs_dict = false;
      cat;
    }
  in
  let elem, run = gen c plan ~stops:[] in
  let out_exprs = celem_fields elem in
  let out_fields = List.map (fun (n, t) -> (n, vty_of t)) out_exprs in
  let out_layout =
    try Layout.make out_fields
    with Invalid_argument msg -> unsupported "result layout: %s" msg
  in
  let width = Layout.row_width out_layout in
  run (fun () ->
      line c "if (lq_total < cap) {";
      push c;
      line c "unsigned char *lq_o = out + lq_total * %d;" width;
      List.iteri
        (fun i (_, t) ->
          let f = Layout.field_at out_layout i in
          match f.Layout.ftype with
          | Ftype.F64 ->
            line c "wr_f64(lq_o + %d, %s);" f.Layout.offset (as_float t)
          | Ftype.I64 ->
            line c "wr_i64(lq_o + %d, %s);" f.Layout.offset (as_int t)
          | Ftype.I32 | Ftype.Date32 | Ftype.Str32 ->
            line c "wr_i32(lq_o + %d, %s);" f.Layout.offset (as_int t)
          | Ftype.Bool8 ->
            line c "lq_o[%d] = (unsigned char)(%s != 0);" f.Layout.offset
              (as_int t))
        out_exprs;
      pop c;
      line c "}";
      line c "lq_total++;");
  let scan_tables = List.rev c.scans in
  let src = Buffer.create (Buffer.length c.body + 8192) in
  Buffer.add_string src
    (spf
       "/* generated by lqcg (ABI v%d): scans [%s], %d int registers, %d \
        float registers */\n"
       abi_version
       (String.concat "; " scan_tables)
       (List.length c.islots) (List.length c.fslots));
  Buffer.add_string src prelude;
  Buffer.add_buffer src c.aux;
  Buffer.add_char src '\n';
  Buffer.add_string src header;
  Buffer.add_buffer src c.body;
  Buffer.add_string src footer;
  {
    c_source = Buffer.contents src;
    scan_tables;
    int_params = List.rev_map fst c.islots;
    float_params = List.rev_map fst c.fslots;
    out_fields;
    out_scalar = (match elem with CScalar _ -> true | _ -> false);
    needs_dict = c.needs_dict;
  }

let stub_source reason =
  spf
    "/* lq_query: no native C form for this plan.\n\
    \   reason: %s\n\
    \   The interpreted native program serves this shape. */\n\
     typedef int lq_unused;\n"
    reason

let emit_lowered cat plan =
  match emit_plan cat plan with
  | p -> p.c_source
  | exception Unsupported_c msg -> stub_source msg
  | exception Lq_catalog.Engine_intf.Unsupported msg -> stub_source msg
  | exception Catalog.Not_flat t -> stub_source (t ^ ": source is not flat")
  (* A plan whose scans name occurrence-renamed (staged/overridden)
     sources — the hybrid and parallel engines show their offloaded
     remainder through this listing — has no catalog-backed C form. *)
  | exception Lq_expr.Eval.Unbound_source t ->
    stub_source ("unbound source " ^ t)
  | exception Invalid_argument msg -> stub_source msg
  | exception Not_found -> stub_source "plan element not found"
  | exception Failure msg -> stub_source msg

let emit cat (q : Ast.query) : string =
  match Lq_plan.Lower.lower cat q with
  | plan -> emit_lowered cat plan
  | exception Lq_catalog.Engine_intf.Unsupported msg -> stub_source msg
  | exception Catalog.Not_flat t -> stub_source (t ^ ": source is not flat")
  | exception Lq_expr.Typecheck.Type_error msg -> stub_source msg
  | exception Lq_expr.Eval.Unbound_source t ->
    stub_source ("unbound source " ^ t)
  | exception Invalid_argument msg -> stub_source msg
  | exception Not_found -> stub_source "plan element not found"
  | exception Failure msg -> stub_source msg
