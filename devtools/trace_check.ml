(* Standalone trace well-formedness checker for exported Chrome JSON.

   Reads a trace_event document from stdin (or the file named by the
   first argument), re-validates the span tree encoded in args.id /
   args.parent — one root per trace, closed spans, parent containment —
   and exits non-zero listing every violation. verify.sh pipes each
   engine's [lqcg trace --out] export through this. *)

let read_all ic =
  let buf = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel buf ic 65536
     done
   with End_of_file -> ());
  Buffer.contents buf

let () =
  let json =
    match Sys.argv with
    | [| _ |] -> read_all stdin
    | [| _; path |] ->
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_all ic)
    | _ ->
      prerr_endline "usage: trace_check [trace.json]   (default: stdin)";
      exit 2
  in
  match Lq_trace.Wellformed.check_chrome_json json with
  | Ok n ->
    Printf.printf "trace ok: %d events well-formed\n" n;
    exit 0
  | Error problems ->
    Printf.eprintf "trace ill-formed (%d problems):\n" (List.length problems);
    List.iter (fun p -> Printf.eprintf "  - %s\n" p) problems;
    exit 1
