open Lq_expr

type staged_spec = {
  occ : string;
  source : string;
  preds : Ast.lambda list;
}

(* Plan-driven splitting: every known scan in the lowered plan is a stage
   boundary — its occurrence name (assigned by [Lower]) identifies the
   staged input, and the [Filter] conjuncts sitting directly on it are the
   managed-side predicates. The remainder of the plan round-trips to an
   AST (with sources renamed to their occurrences) for the native side. *)
let strip_plan (p : Plan.t) : Ast.query * staged_spec list =
  let specs = ref [] in
  let stage (s : Plan.scan) preds =
    specs := { occ = s.Plan.occ; source = s.Plan.table; preds } :: !specs;
    Plan.Scan { s with Plan.table = s.Plan.occ }
  in
  let rec go (p : Plan.t) : Plan.t =
    match p.Plan.op with
    | Plan.Scan s when s.Plan.known -> { p with Plan.op = stage s [] }
    | Plan.Filter ({ Plan.op = Plan.Scan s; _ }, preds) when s.Plan.known ->
      { p with Plan.op = stage s (List.map (fun pr -> pr.Plan.lambda) preds) }
    | Plan.Scan _ -> p
    | Plan.Filter (i, preds) -> { p with Plan.op = Plan.Filter (go i, preds) }
    | Plan.Project (i, sel) -> { p with Plan.op = Plan.Project (go i, sel) }
    | Plan.Join j ->
      let left = go j.Plan.left in
      let right = go j.Plan.right in
      { p with Plan.op = Plan.Join { j with Plan.left = left; right } }
    | Plan.Aggregate a ->
      { p with Plan.op = Plan.Aggregate { a with Plan.input = go a.Plan.input } }
    | Plan.Sort (i, keys) -> { p with Plan.op = Plan.Sort (go i, keys) }
    | Plan.Top_k { input; keys; limit } ->
      { p with Plan.op = Plan.Top_k { input = go input; keys; limit } }
    | Plan.Limit (i, n) -> { p with Plan.op = Plan.Limit (go i, n) }
    | Plan.Offset (i, n) -> { p with Plan.op = Plan.Offset (go i, n) }
    | Plan.Distinct i -> { p with Plan.op = Plan.Distinct (go i) }
  in
  let stripped = go p in
  (Plan.to_ast stripped, List.rev !specs)

let strip_filters (q : Ast.query) =
  let specs = ref [] in
  let counter = ref 0 in
  (* Peels Where chains down to a source; returns the replacement. Only
     query structure is walked — predicates (and any sub-queries inside
     them) move wholesale to the managed side or stay in lambdas. *)
  let rec peel preds (q : Ast.query) : Ast.query option =
    match q with
    | Ast.Source name ->
      incr counter;
      let occ = Printf.sprintf "%s#%d" name !counter in
      specs := { occ; source = name; preds } :: !specs;
      Some (Ast.Source occ)
    | Ast.Where (src, pred) -> peel (preds @ [ pred ]) src
    | _ -> None
  in
  let rec go (q : Ast.query) : Ast.query =
    match peel [] q with
    | Some replaced -> replaced
    | None -> Ast.map_query_children go q
  in
  let q' = go q in
  (q', List.rev !specs)

(* Producer-tracking walk shared by the path analyses: [on_elem_lambda]
   fires for every lambda parameter that binds elements of [occ]. Returns
   whether the query's own elements are occ's elements. *)
let track ~occ ~(on_elem_var : string -> Ast.expr -> unit) (q : Ast.query) : bool
    =
  let lambda1 (l : Ast.lambda) =
    match l.Ast.params with
    | [ p ] -> on_elem_var p l.Ast.body
    | _ -> invalid_arg "Split.track: lambda arity"
  in
  (* Aggregate selectors inside a group-result body bind group *elements*:
     when the group's input elements are occ's, their paths count too. *)
  let rec agg_selectors (e : Ast.expr) =
    match e with
    | Ast.Agg (_, _, Some sel) -> lambda1 sel
    | Ast.Agg (_, _, None) -> ()
    | Ast.Const _ | Ast.Param _ | Ast.Var _ -> ()
    | Ast.Member (e, _) | Ast.Unop (_, e) -> agg_selectors e
    | Ast.Binop (_, a, b) ->
      agg_selectors a;
      agg_selectors b
    | Ast.If (a, b, c) ->
      agg_selectors a;
      agg_selectors b;
      agg_selectors c
    | Ast.Call (_, args) -> List.iter agg_selectors args
    | Ast.Subquery _ -> ()
    | Ast.Record_of fields -> List.iter (fun (_, e) -> agg_selectors e) fields
  in
  let rec go (q : Ast.query) : bool =
    match q with
    | Ast.Source name -> String.equal name occ
    | Ast.Where (src, pred) ->
      let p = go src in
      if p then lambda1 pred;
      p
    | Ast.Select (src, sel) ->
      if go src then lambda1 sel;
      false
    | Ast.Join j ->
      let pl = go j.left and pr = go j.right in
      if pl then begin
        lambda1 j.left_key;
        match j.result.Ast.params with
        | [ l; _ ] -> on_elem_var l j.result.Ast.body
        | _ -> ()
      end;
      if pr then begin
        lambda1 j.right_key;
        match j.result.Ast.params with
        | [ _; r ] -> on_elem_var r j.result.Ast.body
        | _ -> ()
      end;
      false
    | Ast.Group_by g ->
      if go g.group_source then begin
        lambda1 g.key;
        match g.group_result with
        | Some r -> agg_selectors r.Ast.body
        | None -> ()
      end;
      false
    | Ast.Order_by (src, keys) ->
      let p = go src in
      if p then List.iter (fun (k : Ast.sort_key) -> lambda1 k.Ast.by) keys;
      p
    | Ast.Take (src, _) | Ast.Skip (src, _) | Ast.Distinct src -> go src
  in
  go q

let used_paths (q : Ast.query) ~occ =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let add path =
    if not (Hashtbl.mem seen path) then begin
      Hashtbl.add seen path ();
      acc := path :: !acc
    end
  in
  let producer =
    track ~occ
      ~on_elem_var:(fun var body -> List.iter add (Paths.of_expr ~var body))
      q
  in
  if producer then add [];
  List.rev !acc

let result_is_occ_elements (q : Ast.query) ~occ =
  track ~occ ~on_elem_var:(fun _ _ -> ()) q

(* Member-chain rewriting inside lambdas bound to occ elements. *)
let rec chain_root acc (e : Ast.expr) =
  match e with
  | Ast.Member (inner, name) -> chain_root (name :: acc) inner
  | _ -> (e, acc)

let rewrite_body ~var ~rename (body : Ast.expr) : Ast.expr =
  let rec rw bound (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Member _ -> (
      let root, path = chain_root [] e in
      match root with
      | Ast.Var v when String.equal v var && not (List.mem v bound) ->
        Ast.Member (Ast.Var v, rename path)
      | _ ->
        let rec rebuild (e : Ast.expr) =
          match e with
          | Ast.Member (inner, name) -> Ast.Member (rebuild inner, name)
          | other -> rw bound other
        in
        rebuild e)
    | Ast.Const _ | Ast.Param _ | Ast.Var _ -> e
    | Ast.Unop (op, e) -> Ast.Unop (op, rw bound e)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rw bound a, rw bound b)
    | Ast.If (a, b, c) -> Ast.If (rw bound a, rw bound b, rw bound c)
    | Ast.Call (f, args) -> Ast.Call (f, List.map (rw bound) args)
    | Ast.Agg (k, src, sel) ->
      Ast.Agg
        ( k,
          rw bound src,
          Option.map
            (fun (l : Ast.lambda) ->
              { l with Ast.body = rw (l.Ast.params @ bound) l.Ast.body })
            sel )
    | Ast.Subquery q -> Ast.Subquery q
    | Ast.Record_of fields ->
      Ast.Record_of (List.map (fun (n, e) -> (n, rw bound e)) fields)
  in
  rw [] body

let rewrite_paths (q : Ast.query) ~occ ~rename =
  (* Mirrors [track], but rebuilding the tree. *)
  let rw_lambda1 (l : Ast.lambda) =
    match l.Ast.params with
    | [ p ] -> { l with Ast.body = rewrite_body ~var:p ~rename l.Ast.body }
    | _ -> l
  in
  let rw_result_param i (l : Ast.lambda) =
    match List.nth_opt l.Ast.params i with
    | Some p -> { l with Ast.body = rewrite_body ~var:p ~rename l.Ast.body }
    | None -> l
  in
  let rec rw_agg_selectors (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Agg (k, src, Some sel) -> Ast.Agg (k, src, Some (rw_lambda1 sel))
    | Ast.Agg (_, _, None) | Ast.Const _ | Ast.Param _ | Ast.Var _ -> e
    | Ast.Member (e, f) -> Ast.Member (rw_agg_selectors e, f)
    | Ast.Unop (op, e) -> Ast.Unop (op, rw_agg_selectors e)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rw_agg_selectors a, rw_agg_selectors b)
    | Ast.If (a, b, c) ->
      Ast.If (rw_agg_selectors a, rw_agg_selectors b, rw_agg_selectors c)
    | Ast.Call (f, args) -> Ast.Call (f, List.map rw_agg_selectors args)
    | Ast.Subquery q -> Ast.Subquery q
    | Ast.Record_of fields ->
      Ast.Record_of (List.map (fun (n, e) -> (n, rw_agg_selectors e)) fields)
  in
  let rec go (q : Ast.query) : bool * Ast.query =
    match q with
    | Ast.Source name -> (String.equal name occ, q)
    | Ast.Where (src, pred) ->
      let p, src = go src in
      (p, Ast.Where (src, if p then rw_lambda1 pred else pred))
    | Ast.Select (src, sel) ->
      let p, src = go src in
      (false, Ast.Select (src, if p then rw_lambda1 sel else sel))
    | Ast.Join j ->
      let pl, left = go j.left in
      let pr, right = go j.right in
      let left_key = if pl then rw_lambda1 j.left_key else j.left_key in
      let right_key = if pr then rw_lambda1 j.right_key else j.right_key in
      let result = if pl then rw_result_param 0 j.result else j.result in
      let result = if pr then rw_result_param 1 result else result in
      (false, Ast.Join { left; right; left_key; right_key; result })
    | Ast.Group_by g ->
      let p, group_source = go g.group_source in
      let key = if p then rw_lambda1 g.key else g.key in
      let group_result =
        match g.group_result with
        | Some r when p -> Some { r with Ast.body = rw_agg_selectors r.Ast.body }
        | other -> other
      in
      (false, Ast.Group_by { group_source; key; group_result })
    | Ast.Order_by (src, keys) ->
      let p, src = go src in
      let keys =
        if p then
          List.map (fun (k : Ast.sort_key) -> { k with Ast.by = rw_lambda1 k.Ast.by }) keys
        else keys
      in
      (p, Ast.Order_by (src, keys))
    | Ast.Take (src, n) ->
      let p, src = go src in
      (p, Ast.Take (src, n))
    | Ast.Skip (src, n) ->
      let p, src = go src in
      (p, Ast.Skip (src, n))
    | Ast.Distinct src ->
      let p, src = go src in
      (p, Ast.Distinct src)
  in
  snd (go q)

let all_leaf_paths ty =
  let rec go prefix (ty : Lq_value.Vtype.t) acc =
    match ty with
    | Lq_value.Vtype.Record fields ->
      List.fold_left (fun acc (n, t) -> go (n :: prefix) t acc) acc fields
    | Lq_value.Vtype.List _ -> acc
    | _ -> List.rev prefix :: acc
  in
  List.rev (go [] ty [])
