type unop = Neg | Not
type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type func =
  | Starts_with
  | Ends_with
  | Contains
  | Like
  | Lower
  | Upper
  | Length
  | Abs
  | Year
  | Add_days

type agg = Sum | Count | Min | Max | Avg
type dir = Asc | Desc

type expr =
  | Const of Lq_value.Value.t
  | Param of string
  | Var of string
  | Member of expr * string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Call of func * expr list
  | Agg of agg * expr * lambda option
  | Subquery of query
  | Record_of of (string * expr) list

and lambda = { params : string list; body : expr }
and sort_key = { by : lambda; dir : dir }

and query =
  | Source of string
  | Where of query * lambda
  | Select of query * lambda
  | Join of join
  | Group_by of group_by
  | Order_by of query * sort_key list
  | Take of query * expr
  | Skip of query * expr
  | Distinct of query

and join = {
  left : query;
  right : query;
  left_key : lambda;
  right_key : lambda;
  result : lambda;
}

and group_by = {
  group_source : query;
  key : lambda;
  group_result : lambda option;
}

let lam params body = { params; body }
let group_key_field = "Key"
let group_items_field = "Items"

module Sset = Set.Make (String)

(* Free variables: a fold threading the set of bound names. *)

let rec fv_expr bound acc = function
  | Const _ | Param _ -> acc
  | Var v -> if Sset.mem v bound then acc else Sset.add v acc
  | Member (e, _) -> fv_expr bound acc e
  | Unop (_, e) -> fv_expr bound acc e
  | Binop (_, a, b) -> fv_expr bound (fv_expr bound acc a) b
  | If (c, t, e) -> fv_expr bound (fv_expr bound (fv_expr bound acc c) t) e
  | Call (_, args) -> List.fold_left (fv_expr bound) acc args
  | Agg (_, src, sel) ->
    let acc = fv_expr bound acc src in
    (match sel with None -> acc | Some l -> fv_lambda bound acc l)
  | Subquery q -> fv_query bound acc q
  | Record_of fields -> List.fold_left (fun acc (_, e) -> fv_expr bound acc e) acc fields

and fv_lambda bound acc { params; body } =
  fv_expr (List.fold_left (fun s p -> Sset.add p s) bound params) acc body

and fv_query bound acc = function
  | Source _ -> acc
  | Where (q, l) | Select (q, l) -> fv_lambda bound (fv_query bound acc q) l
  | Join { left; right; left_key; right_key; result } ->
    let acc = fv_query bound (fv_query bound acc left) right in
    let acc = fv_lambda bound acc left_key in
    let acc = fv_lambda bound acc right_key in
    fv_lambda bound acc result
  | Group_by { group_source; key; group_result } ->
    let acc = fv_query bound acc group_source in
    let acc = fv_lambda bound acc key in
    (match group_result with None -> acc | Some l -> fv_lambda bound acc l)
  | Order_by (q, keys) ->
    List.fold_left (fun acc k -> fv_lambda bound acc k.by) (fv_query bound acc q) keys
  | Take (q, e) | Skip (q, e) -> fv_expr bound (fv_query bound acc q) e
  | Distinct q -> fv_query bound acc q

let free_vars e = Sset.elements (fv_expr Sset.empty Sset.empty e)
let free_vars_query q = Sset.elements (fv_query Sset.empty Sset.empty q)
let is_correlated q = free_vars_query q <> []

(* Substitution stops when a lambda rebinds a substituted name. *)

let rec subst env e =
  if env = [] then e
  else
    match e with
    | Const _ | Param _ -> e
    | Var v -> ( match List.assoc_opt v env with Some e' -> e' | None -> e)
    | Member (e, f) -> Member (subst env e, f)
    | Unop (op, e) -> Unop (op, subst env e)
    | Binop (op, a, b) -> Binop (op, subst env a, subst env b)
    | If (c, t, e) -> If (subst env c, subst env t, subst env e)
    | Call (f, args) -> Call (f, List.map (subst env) args)
    | Agg (a, src, sel) ->
      Agg (a, subst env src, Option.map (subst_lambda env) sel)
    | Subquery q -> Subquery (subst_query env q)
    | Record_of fields -> Record_of (List.map (fun (n, e) -> (n, subst env e)) fields)

and subst_lambda env ({ params; body } as l) =
  let env = List.filter (fun (v, _) -> not (List.mem v params)) env in
  if env = [] then l else { params; body = subst env body }

and subst_query env q =
  if env = [] then q
  else
    match q with
    | Source _ -> q
    | Where (q, l) -> Where (subst_query env q, subst_lambda env l)
    | Select (q, l) -> Select (subst_query env q, subst_lambda env l)
    | Join j ->
      Join
        {
          left = subst_query env j.left;
          right = subst_query env j.right;
          left_key = subst_lambda env j.left_key;
          right_key = subst_lambda env j.right_key;
          result = subst_lambda env j.result;
        }
    | Group_by g ->
      Group_by
        {
          group_source = subst_query env g.group_source;
          key = subst_lambda env g.key;
          group_result = Option.map (subst_lambda env) g.group_result;
        }
    | Order_by (q, keys) ->
      Order_by
        ( subst_query env q,
          List.map (fun k -> { k with by = subst_lambda env k.by }) keys )
    | Take (q, e) -> Take (subst_query env q, subst env e)
    | Skip (q, e) -> Skip (subst_query env q, subst env e)
    | Distinct q -> Distinct (subst_query env q)

let map_query_children f = function
  | Source _ as q -> q
  | Where (q, l) -> Where (f q, l)
  | Select (q, l) -> Select (f q, l)
  | Join j -> Join { j with left = f j.left; right = f j.right }
  | Group_by g -> Group_by { g with group_source = f g.group_source }
  | Order_by (q, keys) -> Order_by (f q, keys)
  | Take (q, e) -> Take (f q, e)
  | Skip (q, e) -> Skip (f q, e)
  | Distinct q -> Distinct (f q)

let equal_expr (a : expr) (b : expr) = a = b
let equal_query (a : query) (b : query) = a = b

(* Generic existence scans. [pred] sees every sub-expression in pre-order,
   including lambda bodies and the insides of nested sub-queries; a [true]
   short-circuits. The decorrelation pass and the access model use these
   instead of hand-rolling one traversal per question. *)

let rec exists_expr pred (e : expr) =
  pred e
  ||
  match e with
  | Const _ | Param _ | Var _ -> false
  | Member (e, _) | Unop (_, e) -> exists_expr pred e
  | Binop (_, a, b) -> exists_expr pred a || exists_expr pred b
  | If (a, b, c) -> exists_expr pred a || exists_expr pred b || exists_expr pred c
  | Call (_, args) -> List.exists (exists_expr pred) args
  | Agg (_, src, sel) -> (
    exists_expr pred src
    || match sel with None -> false | Some l -> exists_expr pred l.body)
  | Subquery q -> exists_query pred q
  | Record_of fields -> List.exists (fun (_, e) -> exists_expr pred e) fields

and exists_query pred (q : query) =
  match q with
  | Source _ -> false
  | Where (q, l) | Select (q, l) -> exists_query pred q || exists_expr pred l.body
  | Join j ->
    exists_query pred j.left || exists_query pred j.right
    || exists_expr pred j.left_key.body
    || exists_expr pred j.right_key.body
    || exists_expr pred j.result.body
  | Group_by g -> (
    exists_query pred g.group_source
    || exists_expr pred g.key.body
    || match g.group_result with None -> false | Some l -> exists_expr pred l.body)
  | Order_by (q, keys) ->
    exists_query pred q || List.exists (fun k -> exists_expr pred k.by.body) keys
  | Take (q, e) | Skip (q, e) -> exists_query pred q || exists_expr pred e
  | Distinct q -> exists_query pred q

let rec sources_acc acc = function
  | Source s -> Sset.add s acc
  | Where (q, l) | Select (q, l) -> sources_acc (sources_expr acc l.body) q
  | Join j ->
    let acc = sources_acc (sources_acc acc j.left) j.right in
    let acc = sources_expr acc j.left_key.body in
    let acc = sources_expr acc j.right_key.body in
    sources_expr acc j.result.body
  | Group_by g ->
    let acc = sources_acc acc g.group_source in
    let acc = sources_expr acc g.key.body in
    (match g.group_result with None -> acc | Some l -> sources_expr acc l.body)
  | Order_by (q, keys) ->
    List.fold_left (fun acc k -> sources_expr acc k.by.body) (sources_acc acc q) keys
  | Take (q, e) | Skip (q, e) -> sources_expr (sources_acc acc q) e
  | Distinct q -> sources_acc acc q

and sources_expr acc = function
  | Const _ | Param _ | Var _ -> acc
  | Member (e, _) | Unop (_, e) -> sources_expr acc e
  | Binop (_, a, b) -> sources_expr (sources_expr acc a) b
  | If (c, t, e) -> sources_expr (sources_expr (sources_expr acc c) t) e
  | Call (_, args) -> List.fold_left sources_expr acc args
  | Agg (_, src, sel) ->
    let acc = sources_expr acc src in
    (match sel with None -> acc | Some l -> sources_expr acc l.body)
  | Subquery q -> sources_acc acc q
  | Record_of fields -> List.fold_left (fun acc (_, e) -> sources_expr acc e) acc fields

let sources_of_query q = Sset.elements (sources_acc Sset.empty q)

let rec params_expr acc = function
  | Const _ | Var _ -> acc
  | Param p -> Sset.add p acc
  | Member (e, _) | Unop (_, e) -> params_expr acc e
  | Binop (_, a, b) -> params_expr (params_expr acc a) b
  | If (c, t, e) -> params_expr (params_expr (params_expr acc c) t) e
  | Call (_, args) -> List.fold_left params_expr acc args
  | Agg (_, src, sel) ->
    let acc = params_expr acc src in
    (match sel with None -> acc | Some l -> params_expr acc l.body)
  | Subquery q -> params_query acc q
  | Record_of fields -> List.fold_left (fun acc (_, e) -> params_expr acc e) acc fields

and params_query acc = function
  | Source _ -> acc
  | Where (q, l) | Select (q, l) -> params_query (params_expr acc l.body) q
  | Join j ->
    let acc = params_query (params_query acc j.left) j.right in
    let acc = params_expr acc j.left_key.body in
    let acc = params_expr acc j.right_key.body in
    params_expr acc j.result.body
  | Group_by g ->
    let acc = params_query acc g.group_source in
    let acc = params_expr acc g.key.body in
    (match g.group_result with None -> acc | Some l -> params_expr acc l.body)
  | Order_by (q, keys) ->
    List.fold_left (fun acc k -> params_expr acc k.by.body) (params_query acc q) keys
  | Take (q, e) | Skip (q, e) -> params_expr (params_query acc q) e
  | Distinct q -> params_query acc q

let params_of_query q = Sset.elements (params_query Sset.empty q)

let rec query_size = function
  | Source _ -> 1
  | Where (q, l) | Select (q, l) -> 1 + query_size q + expr_size l.body
  | Join j ->
    1 + query_size j.left + query_size j.right + expr_size j.result.body
  | Group_by g -> 1 + query_size g.group_source
  | Order_by (q, _) | Distinct q -> 1 + query_size q
  | Take (q, _) | Skip (q, _) -> 1 + query_size q

and expr_size = function
  | Subquery q -> query_size q
  | Const _ | Param _ | Var _ -> 0
  | Member (e, _) | Unop (_, e) -> expr_size e
  | Binop (_, a, b) -> expr_size a + expr_size b
  | If (c, t, e) -> expr_size c + expr_size t + expr_size e
  | Call (_, args) -> List.fold_left (fun acc e -> acc + expr_size e) 0 args
  | Agg (_, src, sel) -> (
    expr_size src + match sel with None -> 0 | Some l -> expr_size l.body)
  | Record_of fields -> List.fold_left (fun acc (_, e) -> acc + expr_size e) 0 fields
