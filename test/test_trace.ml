(* End-to-end tracing: span-tree well-formedness (unit + qcheck over
   random span programs), the head-sampler and slow-trace ring, the
   Chrome trace_event exporter (byte-stable golden + standalone
   re-validation), per-engine differential invariants (one root, cache
   hits skip codegen, hybrid staging/native split reconciles with the
   profile, parallel partitions attribute to the right request), the
   service-level span shapes (queue wait, retry attempts vs the retry
   counter, fallback hops, the double-charge regression), and a
   4-Domain storm asserting no cross-request span leakage. *)

open Lq_expr.Dsl
module Trace = Lq_trace.Trace
module Tree = Lq_trace.Tree
module Json = Lq_trace.Json
module Chrome = Lq_trace.Chrome
module Wellformed = Lq_trace.Wellformed
module Provider = Lq_core.Provider
module Engines = Lq_core.Engines
module Service = Lq_service.Service
module Request = Lq_service.Request
module Future = Lq_service.Future
module Svc_metrics = Lq_service.Svc_metrics
module Profile = Lq_metrics.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let check_wf label tr =
  match Wellformed.check tr with
  | Ok () -> ()
  | Error problems ->
    Alcotest.failf "%s: ill-formed trace:\n  %s\n%s" label
      (String.concat "\n  " problems) (Tree.to_string tr)

let spans_of_kind k tr = List.filter (fun s -> s.Trace.kind = k) (Trace.spans tr)
let attr name (s : Trace.span) = List.assoc_opt name s.Trace.attrs

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A controllable clock: every sample advances by [step]. *)
let ticker ?(step = 1.0) () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. step;
    v

(* ------------------------------------------------------------------ *)
(* The golden trace is built at module-load time, before any other test
   allocates a trace, so its trace_id (which the exporter embeds in
   args.trace) is stable run after run. *)

let golden_trace =
  let clock = ticker ~step:0.25 () in
  let tr = Trace.start ~clock ~label:"Q1" () in
  Trace.with_trace tr (fun () ->
      Trace.with_span Trace.Queue "queue" (fun () -> ());
      Trace.with_span
        ~attrs:[ ("engine", "hybrid-csharp-c[max]"); ("n", "0") ]
        Trace.Retry_attempt "attempt"
        (fun () ->
          Trace.with_span Trace.Optimize "optimize" (fun () -> ());
          Trace.with_span Trace.Lower "lower" (fun () -> ());
          Trace.with_span Trace.Cache_lookup "query-cache" (fun () ->
              Trace.span_attr "outcome" "miss";
              Trace.with_span Trace.Codegen "hybrid-csharp-c[max]" (fun () -> ()));
          Trace.with_span Trace.Execute "hybrid-csharp-c[max]" (fun () ->
              Trace.span_attr "rows" "4";
              Trace.with_span
                ~attrs:[ ("source", "lineitem") ]
                Trace.Staging "stage:lineitem#1"
                (fun () -> ());
              Trace.add_span Trace.Native_op "Aggregation (C)" ~start_ms:3.0
                ~dur_ms:0.25;
              Trace.add_span Trace.Return_result "return-result" ~start_ms:3.25
                ~dur_ms:0.25);
          Trace.event ~attrs:[ ("engine", "always-internal") ] Trace.Breaker_event
            "opened"));
  Trace.finish tr;
  tr

(* ------------------------------------------------------------------ *)
(* span-tree mechanics *)

let test_span_basics () =
  check_bool "off-path: no ambient trace" false (Trace.tracing ());
  (* span points without a trace are inert, not errors *)
  check_int "with_span runs the thunk untraced" 7
    (Trace.with_span Trace.Execute "nowhere" (fun () -> 7));
  Trace.span_attr "k" "v";
  Trace.event Trace.Breaker_event "nowhere";
  let clock = ticker () in
  let tr = Trace.start ~clock ~label:"basic" () in
  check_string "label" "basic" (Trace.label tr);
  check_bool "unfinished" false (Trace.is_finished tr);
  check_bool "duration 0 while open" true (Trace.duration_ms tr = 0.0);
  Trace.with_trace tr (fun () ->
      check_bool "ambient inside with_trace" true (Trace.tracing ());
      Trace.with_span Trace.Optimize "opt" (fun () ->
          Trace.span_attr "k" "v";
          Trace.with_span Trace.Codegen "gen" (fun () -> ()));
      Trace.event Trace.Breaker_event "opened";
      match Trace.with_span Trace.Execute "boom" (fun () -> failwith "planned") with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure _ -> ());
  Trace.finish tr;
  Trace.finish tr (* idempotent *);
  check_bool "finished" true (Trace.is_finished tr);
  check_bool "root duration positive" true (Trace.duration_ms tr > 0.0);
  check_wf "basic" tr;
  let spans = Trace.spans tr in
  check_int "root + 4 children" 5 (List.length spans);
  let root = List.hd spans in
  check_bool "root is the Request span" true
    (root.Trace.id = 1 && root.Trace.parent = 0 && root.Trace.kind = Trace.Request);
  let opt = List.find (fun s -> s.Trace.name = "opt") spans in
  let gen = List.find (fun s -> s.Trace.name = "gen") spans in
  let ev = List.find (fun s -> s.Trace.name = "opened") spans in
  let boom = List.find (fun s -> s.Trace.name = "boom") spans in
  check_bool "span_attr attached" true (attr "k" opt = Some "v");
  check_int "nesting recorded" opt.Trace.id gen.Trace.parent;
  check_int "event parents under the root" 1 ev.Trace.parent;
  check_bool "event is an instant span" true (ev.Trace.dur_ms = 0.0);
  check_bool "raising span still closed" true (boom.Trace.dur_ms >= 0.0);
  check_bool "all spans closed" true
    (List.for_all (fun s -> s.Trace.dur_ms >= 0.0) spans)

(* qcheck: any program of nested / sequential / failing spans yields a
   well-formed tree with exactly one span per executed node. *)
type prog = P of int * bool * prog list

let kinds = Array.of_list Trace.all_kinds

let gen_prog : prog list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let node =
    fix (fun self n ->
        let* k = int_range 0 (Array.length kinds - 1) and* fails = bool in
        if n <= 0 then return (P (k, fails, []))
        else
          let* kids = list_size (int_range 0 3) (self (n / 2)) in
          return (P (k, fails, kids)))
  in
  list_size (int_range 0 5) (node 8)

let rec count_nodes (P (_, _, kids)) = 1 + List.fold_left (fun a p -> a + count_nodes p) 0 kids

exception Planned

let rec run_prog (P (k, fails, kids)) =
  match
    Trace.with_span kinds.(k)
      (Printf.sprintf "%s-node" (Trace.kind_to_string kinds.(k)))
      (fun () ->
        List.iter run_prog kids;
        if fails then raise Planned)
  with
  | () -> ()
  | exception Planned -> ()

let qcheck_wellformed =
  Lq_testkit.qtest ~count:300 "any span program yields a well-formed tree" gen_prog
    (fun progs ->
      let clock = ticker ~step:0.5 () in
      let tr = Trace.start ~clock ~label:"gen" () in
      Trace.with_trace tr (fun () -> List.iter run_prog progs);
      Trace.finish tr;
      let expected = 1 + List.fold_left (fun a p -> a + count_nodes p) 0 progs in
      (match Wellformed.check tr with
      | Ok () -> ()
      | Error problems ->
        QCheck2.Test.fail_reportf "ill-formed: %s" (String.concat "; " problems));
      if List.length (Trace.spans tr) <> expected then
        QCheck2.Test.fail_reportf "expected %d spans, got %d" expected
          (List.length (Trace.spans tr));
      true)

let test_sampler () =
  let never = Trace.Sampler.create ~p:0.0 () in
  let always = Trace.Sampler.create ~p:1.0 () in
  check_bool "p=0 never samples" false
    (List.exists Fun.id (List.init 500 (fun _ -> Trace.Sampler.sample never)));
  check_bool "p=1 always samples" true
    (List.for_all Fun.id (List.init 500 (fun _ -> Trace.Sampler.sample always)));
  check_bool "probability clamped" true
    (Trace.Sampler.probability (Trace.Sampler.create ~p:7.0 ()) = 1.0);
  let draw_stream seed =
    let s = Trace.Sampler.create ~seed ~p:0.3 () in
    List.init 1000 (fun _ -> Trace.Sampler.sample s)
  in
  let a = draw_stream 42 and b = draw_stream 42 in
  check_bool "same seed replays the same decisions" true (a = b);
  let hits = List.length (List.filter Fun.id a) in
  check_bool (Printf.sprintf "rate near p (%d/1000)" hits) true (hits > 220 && hits < 380)

let test_ring () =
  let mk dur =
    let first = ref true in
    let clock () = if !first then (first := false; 0.0) else dur in
    let tr = Trace.start ~clock ~label:(Printf.sprintf "d%.0f" dur) () in
    Trace.finish tr;
    tr
  in
  let ring = Trace.Ring.create ~capacity:3 () in
  check_int "capacity" 3 (Trace.Ring.capacity ring);
  List.iter (fun d -> Trace.Ring.note ring (mk d)) [ 5.0; 1.0; 9.0; 3.0; 7.0 ];
  Alcotest.(check (list string))
    "keeps the slowest, slowest first" [ "d9"; "d7"; "d5" ]
    (List.map Trace.label (Trace.Ring.slowest ring));
  check_bool "report mentions the slowest" true
    (let r = Trace.Ring.report ring in
     String.length r > 0);
  Trace.Ring.clear ring;
  check_bool "clear empties" true (Trace.Ring.slowest ring = []);
  check_string "empty report is empty" "" (Trace.Ring.report ring)

let test_tree_printer () =
  let s = Tree.to_string golden_trace in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "tree shows %S" needle) true (contains s needle))
    [ "Q1"; "queue"; "attempt"; "stage:lineitem#1"; "Aggregation (C)"; "└─" ]

(* ------------------------------------------------------------------ *)
(* Chrome exporter: byte-stable golden + standalone re-validation *)

(* dune runtest runs in the test build dir; dune exec from the root *)
let golden_path =
  if Sys.file_exists "golden/chrome_trace.json" then "golden/chrome_trace.json"
  else "test/golden/chrome_trace.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_chrome_golden () =
  let json = Chrome.to_json [ golden_trace ] in
  (match Sys.getenv_opt "LQ_TRACE_BLESS" with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir "chrome_trace.json") in
    output_string oc json;
    close_out oc
  | None -> ());
  (* the document must be valid JSON with one complete event per span *)
  (match Json.parse json with
  | Error e -> Alcotest.failf "exporter emitted unparseable JSON: %s" e
  | Ok doc -> (
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | None -> Alcotest.fail "no traceEvents array"
    | Some evs ->
      check_int "one event per span" (List.length (Trace.spans golden_trace))
        (List.length evs);
      List.iter
        (fun ev ->
          check_bool "every event is a complete event" true
            (Option.bind (Json.member "ph" ev) Json.to_str = Some "X"))
        evs));
  (* the standalone checker accepts its own export *)
  (match Wellformed.check_chrome_json json with
  | Ok n -> check_int "checker saw every event" (List.length (Trace.spans golden_trace)) n
  | Error problems ->
    Alcotest.failf "checker rejected the export: %s" (String.concat "; " problems));
  (* byte-for-byte stability against the checked-in golden file *)
  check_string "byte-stable vs golden file" (read_file golden_path) json

let test_chrome_checker_rejects () =
  (* move a child's ts far outside its parent: the checker must notice
     from the JSON alone *)
  let json = Chrome.to_json [ golden_trace ] in
  let corrupt_event = function
    | Json.Obj fields when List.assoc_opt "name" fields = Some (Json.Str "optimize") ->
      Json.Obj
        (List.map (fun (k, v) -> if k = "ts" then (k, Json.Int 99_999_999) else (k, v)) fields)
    | ev -> ev
  in
  let broken =
    match Json.parse json with
    | Ok (Json.Obj fields) ->
      Json.to_string
        (Json.Obj
           (List.map
              (fun (k, v) ->
                match (k, v) with
                | "traceEvents", Json.List evs -> (k, Json.List (List.map corrupt_event evs))
                | _ -> (k, v))
              fields))
    | _ -> Alcotest.fail "export did not parse as an object"
  in
  (match Wellformed.check_chrome_json broken with
  | Ok _ -> Alcotest.fail "checker accepted a span outside its parent"
  | Error _ -> ());
  match Wellformed.check_chrome_json "not json at all" with
  | Ok _ -> Alcotest.fail "checker accepted garbage"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* per-engine differential invariants through the provider *)

let q_paris = source "sales" |> where "s" (v "s" $. "city" =: str "Paris")

let traced_run ?profile prov ~engine q =
  let tr = Trace.start ~label:engine.Lq_catalog.Engine_intf.name () in
  let rows =
    Fun.protect
      ~finally:(fun () -> Trace.finish tr)
      (fun () -> Trace.with_trace tr (fun () -> Provider.run prov ~engine ?profile q))
  in
  (tr, rows)

let test_engine_invariants () =
  List.iter
    (fun engine ->
      let name = engine.Lq_catalog.Engine_intf.name in
      let cat = Lq_testkit.sales_catalog ~n:120 () in
      let prov = Provider.create cat in
      let oracle = Provider.reference prov q_paris in
      (* cold: the cache misses and codegen is paid (and traced) *)
      let cold, rows = traced_run prov ~engine q_paris in
      check_wf (name ^ " cold") cold;
      check_bool (name ^ ": rows match the oracle") true
        (Lq_testkit.rows_close oracle rows);
      check_int (name ^ ": exactly one root") 1
        (List.length (spans_of_kind Trace.Request cold));
      let execs = spans_of_kind Trace.Execute cold in
      check_bool (name ^ ": an execute span named after the engine") true
        (List.exists (fun s -> s.Trace.name = name) execs);
      check_bool (name ^ ": rows attr on execute") true
        (List.exists (fun s -> attr "rows" s <> None) execs);
      check_bool (name ^ ": cold run paid codegen") true
        (spans_of_kind Trace.Codegen cold <> []);
      let lookups = spans_of_kind Trace.Cache_lookup cold in
      check_bool (name ^ ": cold cache lookup was a miss") true
        (List.exists (fun s -> attr "outcome" s = Some "miss") lookups);
      (* warm: the hit skips codegen entirely *)
      let warm, rows' = traced_run prov ~engine q_paris in
      check_wf (name ^ " warm") warm;
      check_bool (name ^ ": warm rows match") true (Lq_testkit.rows_close oracle rows');
      check_int (name ^ ": cache hit has no codegen span") 0
        (List.length (spans_of_kind Trace.Codegen warm));
      check_bool (name ^ ": warm cache lookup was a hit") true
        (List.exists
           (fun s -> attr "outcome" s = Some "hit")
           (spans_of_kind Trace.Cache_lookup warm)))
    Engines.all

let test_hybrid_trace_reconciles_with_profile () =
  let cat = Lq_tpch.Dbgen.load ~sf:0.005 () in
  let prov = Provider.create cat in
  let profile = Profile.create () in
  let tr, _rows =
    traced_run ~profile prov ~engine:Engines.hybrid
      (source "lineitem" |> Lq_tpch.Queries.q1_grouping)
  in
  check_wf "hybrid Q1" tr;
  let staging = spans_of_kind Trace.Staging tr in
  let native = spans_of_kind Trace.Native_op tr in
  let ret = spans_of_kind Trace.Return_result tr in
  check_bool "staging spans present" true (staging <> []);
  check_int "one native-op span" 1 (List.length native);
  check_int "one return-result span" 1 (List.length ret);
  check_bool "native-op span is distinct from staging" true
    (List.for_all (fun (n : Trace.span) ->
         List.for_all (fun (s : Trace.span) -> n.Trace.id <> s.Trace.id) staging)
       native);
  let sum = List.fold_left (fun a s -> a +. s.Trace.dur_ms) 0.0 in
  let span_total = sum staging +. sum native +. sum ret in
  let profile_total = Profile.total_ms profile in
  check_bool
    (Printf.sprintf "spans (%.3f ms) reconcile with profile (%.3f ms) within 5%%"
       span_total profile_total)
    true
    (Float.abs (span_total -. profile_total) <= 0.05 *. Float.max span_total profile_total)

let test_parallel_partition_attribution () =
  let cat = Lq_testkit.sales_catalog ~n:300 () in
  let prov = Provider.create cat in
  let engine = Lq_parallel.Parallel_engine.engine_with ~domains:3 in
  let q = source "sales" |> where "s" (v "s" $. "qty" >: int 10) in
  let oracle = Provider.reference prov q in
  let tr, rows = traced_run prov ~engine q in
  check_wf "parallel" tr;
  check_bool "rows match the oracle" true (Lq_testkit.rows_close oracle rows);
  let parts = spans_of_kind Trace.Partition tr in
  check_bool
    (Printf.sprintf "multiple partition spans (%d)" (List.length parts))
    true
    (List.length parts >= 2);
  (* spawned partitions record the Domain that ran them: at least two
     distinct Domains contributed spans to this one trace *)
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.Trace.domain) (Trace.spans tr))
  in
  check_bool "spans merged across Domains" true (List.length domains >= 2);
  (* and every partition nests under this trace's execute span *)
  let execs = spans_of_kind Trace.Execute tr in
  check_bool "partitions parent under the execute span" true
    (List.for_all
       (fun p ->
         List.exists (fun (e : Trace.span) -> p.Trace.parent = e.Trace.id) execs)
       parts)

(* ------------------------------------------------------------------ *)
(* service-level span shapes *)

let make_service ?(domains = 1) ?(config_patch = Fun.id) ?(n = 120) () =
  let cat = Lq_testkit.sales_catalog ~n () in
  let prov = Provider.create cat in
  let config =
    config_patch { Service.default_config with Service.domains; queue_capacity = 64 }
  in
  (prov, Service.create ~config prov)

let response_trace label (resp : Request.response) =
  match resp.Request.trace with
  | Some tr -> tr
  | None -> Alcotest.failf "%s: no trace on the response" label

let run_traced svc ?label ?engine ?profile q =
  match Service.run_sync svc ?label ?engine ?profile ~trace:true q with
  | Ok resp -> resp
  | Error r -> Alcotest.failf "admission failed: %s" (Service.rejection_to_string r)

let test_service_trace_shape () =
  let _, svc = make_service () in
  let resp = run_traced svc ~label:"paris" q_paris in
  let tr = response_trace "paris" resp in
  check_bool "trace finished before the future resolved" true (Trace.is_finished tr);
  check_wf "service trace" tr;
  check_string "root carries the request label" "paris"
    (List.hd (Trace.spans tr)).Trace.name;
  check_int "exactly one queue span" 1 (List.length (spans_of_kind Trace.Queue tr));
  let attempts = spans_of_kind Trace.Retry_attempt tr in
  check_int "one attempt" 1 (List.length attempts);
  let a = List.hd attempts in
  check_bool "attempt names its engine" true (attr "engine" a <> None);
  check_bool "first attempt is n=0" true (attr "n" a = Some "0");
  (* unsampled requests carry no trace and pay no spans *)
  (match Service.run_sync svc q_paris with
  | Ok resp -> check_bool "unsampled: no trace" true (resp.Request.trace = None)
  | Error _ -> Alcotest.fail "admission failed");
  Service.shutdown svc

let test_fallback_hop_spans () =
  let _, svc = make_service () in
  let always_unsupported =
    {
      Lq_catalog.Engine_intf.name = "always-unsupported";
      describe = "refuses everything";
      caps = Lq_catalog.Engine_intf.caps_any;
      prepare =
        (fun ?instr _ _ ->
          ignore instr;
          raise (Lq_catalog.Engine_intf.Unsupported "refused by construction"));
    }
  in
  let resp = run_traced svc ~engine:always_unsupported q_paris in
  (match resp.Request.outcome with
  | Request.Completed { degraded = true; engine = "linq-to-objects"; _ } -> ()
  | o -> Alcotest.failf "expected degraded completion, got %s" (Request.outcome_kind o));
  let tr = response_trace "fallback" resp in
  check_wf "fallback trace" tr;
  let hops = spans_of_kind Trace.Fallback_hop tr in
  check_int "exactly one fallback hop" 1 (List.length hops);
  let hop = List.hd hops in
  check_bool "hop names the fallback engine" true
    (attr "engine" hop = Some "linq-to-objects");
  check_bool "hop records why" true (attr "after" hop = Some "unsupported");
  (* the fallback's own attempt nests inside the hop *)
  let attempts = spans_of_kind Trace.Retry_attempt tr in
  check_bool "fallback attempt nests inside the hop" true
    (List.exists
       (fun a ->
         a.Trace.parent = hop.Trace.id && attr "engine" a = Some "linq-to-objects")
       attempts);
  (* unsupported engines are not retried: one attempt per ladder rung *)
  check_int "one attempt per rung" 2 (List.length attempts);
  Service.shutdown svc

let flaky_engine ~failures =
  let base = Engines.linq_to_objects in
  let remaining = Atomic.make failures in
  {
    Lq_catalog.Engine_intf.name = "flaky";
    describe = "transiently failing test engine";
    caps = base.Lq_catalog.Engine_intf.caps;
    prepare =
      (fun ?instr plan ctx ->
        if Atomic.fetch_and_add remaining (-1) > 0 then
          Lq_fault.error ~stage:"prepare" Lq_fault.Transient "flaky prepare"
        else base.Lq_catalog.Engine_intf.prepare ?instr plan ctx);
  }

let test_retry_spans_match_counter () =
  let _, svc = make_service () in
  let m = Service.metrics svc in
  let before = Svc_metrics.retried m in
  let resp = run_traced svc ~engine:(flaky_engine ~failures:2) q_paris in
  (match resp.Request.outcome with
  | Request.Completed { engine = "flaky"; degraded = false; _ } -> ()
  | o -> Alcotest.failf "expected clean flaky completion, got %s" (Request.outcome_kind o));
  let tr = response_trace "retry" resp in
  check_wf "retry trace" tr;
  let attempts = spans_of_kind Trace.Retry_attempt tr in
  check_int "three attempts traced" 3 (List.length attempts);
  let retries =
    List.filter (fun a -> match attr "n" a with Some "0" | None -> false | Some _ -> true) attempts
  in
  check_int "retry spans equal the retry counter delta"
    (Svc_metrics.retried m - before) (List.length retries);
  check_int "two of them are retries" 2 (List.length retries);
  Service.shutdown svc

(* The double-charge regression (hybrid staging charged to a request
   profile by an attempt that then failed): with a fault injected after
   the native call, every hybrid attempt stages and dies, the fallback
   completes — and the request profile must contain only the completing
   attempt's phases, while the trace still shows the dead attempts'
   staging spans. *)
let test_hybrid_failed_attempt_not_double_charged () =
  match Lq_fault.Inject.parse_spec "seed=5;hybrid/result=1.0:transient" with
  | Error e -> Alcotest.failf "bad spec: %s" e
  | Ok spec ->
    Lq_fault.Inject.enable spec;
    Fun.protect ~finally:Lq_fault.Inject.disable @@ fun () ->
    let _, svc = make_service () in
    let profile = Profile.create () in
    let resp = run_traced svc ~engine:Engines.hybrid ~profile q_paris in
    (match resp.Request.outcome with
    | Request.Completed { degraded = true; engine = "linq-to-objects"; _ } -> ()
    | o -> Alcotest.failf "expected degraded completion, got %s" (Request.outcome_kind o));
    let tr = response_trace "hybrid regression" resp in
    check_wf "hybrid regression trace" tr;
    check_bool "the dead hybrid attempts did stage (trace shows it)" true
      (spans_of_kind Trace.Staging tr <> []);
    let phases = List.map fst (Profile.phases profile) in
    check_bool "no hybrid staging charged to the request profile" false
      (List.exists
         (fun name ->
           List.mem name
             [ "Data staging (C#)"; "Iterate data (C#)"; "Apply predicates (C#)" ])
         phases);
    check_bool "the completing interpreter attempt was charged" true
      (List.mem "Iterate pipeline (managed)" phases);
    Service.shutdown svc

(* And the positive half: a clean hybrid run charges its phases exactly
   once, and they reconcile with the trace's execute wall time. *)
let test_hybrid_clean_run_charged_once () =
  let _, svc = make_service () in
  let profile = Profile.create () in
  let resp = run_traced svc ~engine:Engines.hybrid ~profile q_paris in
  (match resp.Request.outcome with
  | Request.Completed { degraded = false; _ } -> ()
  | o -> Alcotest.failf "expected clean completion, got %s" (Request.outcome_kind o));
  let tr = response_trace "hybrid clean" resp in
  let phases = Profile.phases profile in
  check_bool "staging charged" true (List.mem_assoc "Data staging (C#)" phases);
  let execs = spans_of_kind Trace.Execute tr in
  check_int "one execute span" 1 (List.length execs);
  let wall = (List.hd execs).Trace.dur_ms in
  let profile_total = Profile.total_ms profile in
  check_bool
    (Printf.sprintf "profile total (%.3f ms) within execute wall (%.3f ms) + 5%%"
       profile_total wall)
    true
    (profile_total <= wall *. 1.05 +. 0.5);
  Service.shutdown svc

(* ------------------------------------------------------------------ *)
(* 4-Domain storm: concurrent traced requests must never leak spans
   across requests. Each submitter uses its own engine, so a leaked
   span is visible as a foreign engine attr, a second root, or a
   second queue span. *)

let test_storm_no_cross_request_leakage () =
  let cat = Lq_testkit.sales_catalog ~n:200 () in
  let prov = Provider.create cat in
  let config =
    { Service.default_config with Service.domains = 4; queue_capacity = 256 }
  in
  let svc = Service.create ~config prov in
  let engines =
    [| Engines.linq_to_objects; Engines.compiled_csharp; Engines.compiled_c; Engines.hybrid |]
  in
  let per_submitter = 25 in
  let results = Array.make (Array.length engines) [] in
  let submitters =
    List.init (Array.length engines) (fun s ->
        Domain.spawn (fun () ->
            let engine = engines.(s) in
            (* one parameterized shape per engine: the plan cache absorbs
               codegen after the first request, so the storm exercises
               concurrency rather than the C compiler *)
            let q = source "sales" |> where "x" (v "x" $. "qty" >: p "floor") in
            let futs =
              List.init per_submitter (fun i ->
                  let label = Printf.sprintf "s%d-r%d" s i in
                  match
                    Service.submit svc ~label ~engine ~trace:true
                      ~params:[ ("floor", Lq_value.Value.Int (5 + (i mod 3))) ]
                      q
                  with
                  | Ok fut -> (label, fut)
                  | Error r ->
                    Alcotest.failf "storm admission failed: %s"
                      (Service.rejection_to_string r))
            in
            results.(s) <- List.map (fun (label, fut) -> (label, Future.await fut)) futs))
  in
  List.iter Domain.join submitters;
  Service.shutdown svc;
  Array.iteri
    (fun s per_engine ->
      let own = engines.(s).Lq_catalog.Engine_intf.name in
      List.iter
        (fun (label, (resp : Request.response)) ->
          (match resp.Request.outcome with
          | Request.Completed { degraded = false; _ } -> ()
          | o -> Alcotest.failf "%s: expected clean completion, got %s" label
                   (Request.outcome_kind o));
          check_string "response label intact" label resp.Request.label;
          let tr = response_trace label resp in
          check_wf label tr;
          check_string (label ^ ": root is its own request") label
            (List.hd (Trace.spans tr)).Trace.name;
          check_int (label ^ ": one queue span") 1
            (List.length (spans_of_kind Trace.Queue tr));
          List.iter
            (fun a ->
              match attr "engine" a with
              | Some e when e = own -> ()
              | Some e -> Alcotest.failf "%s: foreign engine span leaked in: %s" label e
              | None -> Alcotest.failf "%s: attempt without engine attr" label)
            (spans_of_kind Trace.Retry_attempt tr);
          List.iter
            (fun (ex : Trace.span) ->
              check_string (label ^ ": execute span engine") own ex.Trace.name)
            (spans_of_kind Trace.Execute tr))
        per_engine)
    results

let () =
  Alcotest.run "trace"
    [
      ( "span trees",
        [
          Alcotest.test_case "span basics" `Quick test_span_basics;
          qcheck_wellformed;
          Alcotest.test_case "sampler" `Quick test_sampler;
          Alcotest.test_case "slow-trace ring" `Quick test_ring;
          Alcotest.test_case "tree printer" `Quick test_tree_printer;
        ] );
      ( "chrome export",
        [
          Alcotest.test_case "golden byte stability" `Quick test_chrome_golden;
          Alcotest.test_case "checker rejects corruption" `Quick
            test_chrome_checker_rejects;
        ] );
      ( "engines",
        [
          Alcotest.test_case "per-engine invariants" `Quick test_engine_invariants;
          Alcotest.test_case "hybrid trace reconciles with profile" `Quick
            test_hybrid_trace_reconciles_with_profile;
          Alcotest.test_case "parallel partition attribution" `Quick
            test_parallel_partition_attribution;
        ] );
      ( "service",
        [
          Alcotest.test_case "request trace shape" `Quick test_service_trace_shape;
          Alcotest.test_case "fallback hop spans" `Quick test_fallback_hop_spans;
          Alcotest.test_case "retry spans match counter" `Quick
            test_retry_spans_match_counter;
          Alcotest.test_case "hybrid failed attempt not double-charged" `Quick
            test_hybrid_failed_attempt_not_double_charged;
          Alcotest.test_case "hybrid clean run charged once" `Quick
            test_hybrid_clean_run_charged_once;
        ] );
      ( "storm",
        [
          Alcotest.test_case "no cross-request span leakage" `Quick
            test_storm_no_cross_request_leakage;
        ] );
    ]
