open Lq_value
module Ast = Lq_expr.Ast
module Eval = Lq_expr.Eval
module Scalar = Lq_expr.Scalar
module Catalog = Lq_catalog.Catalog
module Engine_intf = Lq_catalog.Engine_intf
module Nplan = Lq_native.Nplan
module Rowstore = Lq_storage.Rowstore
module P = Lq_plan.Plan

let unsupported = Engine_intf.unsupported

(* ------------------------------------------------------------------ *)
(* Plan analysis: split into (pipeline over one source [+ grouping],
   sequential remainder). *)

type partition_point =
  | Pipeline of P.t  (** Filter/Project chain over one Scan *)
  | Grouped of P.aggregate  (** aggregation whose input is such a chain *)

(* The remainder is the query with the partition point replaced by this
   pseudo-source; it runs sequentially over the merged rows. *)
let merged_source = "__merged"

let rec is_pipeline (p : P.t) =
  match p.P.op with
  | P.Scan s -> s.P.known
  | P.Filter (i, _) | P.Project (i, _) -> is_pipeline i
  | _ -> false

let rec forbid_constructs (e : Ast.expr) =
  match e with
  | Ast.Subquery _ -> unsupported "sub-query (parallel backend)"
  | Ast.Call ((Ast.Lower | Ast.Upper), _) ->
    unsupported "runtime string interning (parallel backend)"
  | Ast.Const _ | Ast.Param _ | Ast.Var _ -> ()
  | Ast.Member (e, _) | Ast.Unop (_, e) -> forbid_constructs e
  | Ast.Binop (_, a, b) ->
    forbid_constructs a;
    forbid_constructs b
  | Ast.If (a, b, c) ->
    forbid_constructs a;
    forbid_constructs b;
    forbid_constructs c
  | Ast.Call (_, args) -> List.iter forbid_constructs args
  | Ast.Agg (_, src, sel) ->
    forbid_constructs src;
    Option.iter (fun (l : Ast.lambda) -> forbid_constructs l.Ast.body) sel
  | Ast.Record_of fields -> List.iter (fun (_, e) -> forbid_constructs e) fields

let check_query q =
  let check_lambda (l : Ast.lambda) = forbid_constructs l.Ast.body in
  let rec go (q : Ast.query) =
    (match q with
    | Ast.Where (_, l) | Ast.Select (_, l) -> check_lambda l
    | Ast.Group_by g ->
      check_lambda g.key;
      Option.iter check_lambda g.group_result
    | Ast.Order_by (_, keys) -> List.iter (fun (k : Ast.sort_key) -> check_lambda k.Ast.by) keys
    | _ -> ());
    ignore (Ast.map_query_children (fun c -> go c; c) q)
  in
  go q

(* Finds the partition point in the lowered plan and rebuilds the
   remainder of the query around it (as an expression tree the sequential
   evaluator interprets over the merged rows). *)
let split (plan : P.t) : partition_point * Ast.query =
  let found = ref None in
  let rec go (p : P.t) : Ast.query =
    match p.P.op with
    | P.Aggregate ({ P.group_result = Some _; _ } as a)
      when !found = None && is_pipeline a.P.input ->
      found := Some (Grouped a);
      Ast.Source merged_source
    | _ when !found = None && is_pipeline p ->
      found := Some (Pipeline p);
      Ast.Source merged_source
    | P.Scan s -> Ast.Source s.P.table
    | P.Filter (i, preds) ->
      List.fold_left (fun q (pr : P.pred) -> Ast.Where (q, pr.P.lambda)) (go i) preds
    | P.Project (i, sel) -> Ast.Select (go i, sel)
    | P.Join j ->
      Ast.Join
        {
          Ast.left = go j.P.left;
          right = go j.P.right;
          left_key = j.P.left_key;
          right_key = j.P.right_key;
          result = j.P.result;
        }
    | P.Aggregate a ->
      Ast.Group_by
        { Ast.group_source = go a.P.input; key = a.P.key; group_result = a.P.group_result }
    | P.Sort (i, ks) -> Ast.Order_by (go i, ks)
    | P.Top_k { input; keys; limit } -> Ast.Take (Ast.Order_by (go input, keys), limit)
    | P.Limit (i, n) -> Ast.Take (go i, n)
    | P.Offset (i, n) -> Ast.Skip (go i, n)
    | P.Distinct i -> Ast.Distinct (go i)
  in
  let remainder = go plan in
  match !found with
  | Some point -> (point, remainder)
  | None -> unsupported "no parallelizable pipeline found"

(* ------------------------------------------------------------------ *)
(* Aggregate decomposition for parallel grouping. *)

type partial =
  | P_sum of Ast.lambda option
  | P_count
  | P_min of Ast.lambda option
  | P_max of Ast.lambda option

let partial_name i = Printf.sprintf "__a%d" i

(* Maps the plan's deduplicated accumulator registry to mergeable
   partials ([Avg] splits into a sum and a count) and produces (a) the
   partial selector fields and (b) a rewriting of the result body where
   each [Agg] occurrence reads the merged accumulators through its
   registry slot. *)
let decompose (a : P.aggregate) gvar (body : Ast.expr) =
  let reg = P.Registry.of_aggregate a in
  let partials : partial list ref = ref [] in
  let slot_of p =
    match List.find_index (fun q -> q = p) !partials with
    | Some i -> i
    | None ->
      partials := !partials @ [ p ];
      List.length !partials - 1
  in
  let rec rewrite (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Agg (kind, Ast.Var v, sel) when String.equal v gvar -> (
      let s = P.Registry.spec reg (P.Registry.next reg kind sel) in
      let read p = Ast.Member (Ast.Var "__acc", partial_name (slot_of p)) in
      match s.P.agg with
      | Ast.Sum -> read (P_sum s.P.sel)
      | Ast.Count -> read P_count
      | Ast.Min -> read (P_min s.P.sel)
      | Ast.Max -> read (P_max s.P.sel)
      | Ast.Avg ->
        (* avg = Σx / n over the merged partials; the multiplication by
           1.0 forces float division even for integer selectors *)
        Ast.Binop
          ( Ast.Div,
            Ast.Binop (Ast.Mul, read (P_sum s.P.sel), Ast.Const (Value.Float 1.0)),
            read P_count ))
    | Ast.Agg _ -> unsupported "aggregate source (parallel backend)"
    | Ast.Const _ | Ast.Param _ | Ast.Var _ -> e
    | Ast.Member (e, f) -> Ast.Member (rewrite e, f)
    | Ast.Unop (op, e) -> Ast.Unop (op, rewrite e)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rewrite a, rewrite b)
    | Ast.If (a, b, c) -> Ast.If (rewrite a, rewrite b, rewrite c)
    | Ast.Call (f, args) -> Ast.Call (f, List.map rewrite args)
    | Ast.Subquery _ -> unsupported "sub-query (parallel backend)"
    | Ast.Record_of fields ->
      Ast.Record_of (List.map (fun (n, e) -> (n, rewrite e)) fields)
  in
  let merged_body = rewrite body in
  (!partials, merged_body)

let partial_agg i (p : partial) : string * Ast.expr =
  let g = Ast.Var "__g" in
  ( partial_name i,
    match p with
    | P_sum sel -> Ast.Agg (Ast.Sum, g, sel)
    | P_count -> Ast.Agg (Ast.Count, g, None)
    | P_min sel -> Ast.Agg (Ast.Min, g, sel)
    | P_max sel -> Ast.Agg (Ast.Max, g, sel) )

let combine (p : partial) a b =
  match p with
  | P_sum _ -> Scalar.binop Ast.Add a b
  | P_count -> Scalar.binop Ast.Add a b
  | P_min _ -> if Scalar.cmp a b <= 0 then a else b
  | P_max _ -> if Scalar.cmp a b >= 0 then a else b

(* ------------------------------------------------------------------ *)

let source_of_pipeline q =
  let rec go = function
    | Ast.Source name -> name
    | Ast.Where (src, _) | Ast.Select (src, _) -> go src
    | Ast.Group_by { group_source; _ } -> go group_source
    | _ -> assert false
  in
  go q

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* ------------------------------------------------------------------ *)
(* Morsel-driven scheduling.

   The static split hands each Domain one contiguous [nrows/workers]
   range at prepare time, so one slow partition gates the query. Morsel
   mode instead cuts the scan into small fixed-size work units that
   worker Domains *pull* from a shared atomic counter: a worker that
   drew cheap rows simply pulls more morsels. Results are keyed by
   morsel id and reassembled in morsel order, so the merged output is
   byte-identical to a sequential scan regardless of which Domain ran
   which unit (and of the Domain count). Each morsel is also a
   typed-fault / cancellation checkpoint: a chaos-injected or crashed
   unit flips a shared abort flag that every worker polls between
   pulls, and the coordinator joins every Domain before surfacing the
   fault. *)

type mode =
  | Static  (** one contiguous range per Domain, fixed at prepare *)
  | Morsel  (** shared-queue work units of [LQ_MORSEL_SIZE] rows *)

(* Process-global scheduler counters, surfaced by [Provider.report]. *)
let counters = Lq_metrics.Counters.create ()

let default_morsel_size = 4096

(* Read per execute, so tests and operators can re-tune a live process. *)
let morsel_size () =
  match Sys.getenv_opt "LQ_MORSEL_SIZE" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> default_morsel_size)
  | None -> default_morsel_size

let make ?name ?(mode = Morsel) ~domains () : Engine_intf.t =
  let prepare ?instr cat (query : Ast.query) =
    ignore instr;
    let start = Lq_metrics.Profile.now_ms () in
    check_query query;
    if List.length (Ast.sources_of_query query) <> 1 then
      unsupported "multiple sources (parallel backend)";
    let point, remainder = split (Lq_plan.Lower.lower cat query) in
    (* The per-domain query: the pipeline, grouped with partial
       accumulators when the partition point is an aggregation. *)
    let pipeline, merge_kind =
      match point with
      | Pipeline p -> (P.to_ast p, `Concat)
      | Grouped a ->
        let key = a.P.key in
        let result =
          match a.P.group_result with Some r -> r | None -> assert false
        in
        let gvar =
          match result.Ast.params with
          | [ g ] -> g
          | _ -> unsupported "group result arity (parallel)"
        in
        let partials, merged_body = decompose a gvar result.Ast.body in
        let partial_fields = List.mapi partial_agg partials in
        (* Composite keys are flattened into one partial column per part;
           the merge phase reassembles the key record. *)
        let gkey = Ast.Member (Ast.Var "__g", Ast.group_key_field) in
        let key_fields, rebuild_key =
          match key.Ast.body with
          | Ast.Record_of fields ->
            let names = List.map fst fields in
            ( List.map (fun n -> ("__k_" ^ n, Ast.Member (gkey, n))) names,
              fun row ->
                Value.Record
                  (Array.of_list
                     (List.map (fun n -> (n, Value.field row ("__k_" ^ n))) names)) )
          | _ -> ([ ("__k", gkey) ], fun row -> Value.field row "__k")
        in
        let partial_selector =
          Ast.lam [ "__g" ] (Ast.Record_of (key_fields @ partial_fields))
        in
        ( Ast.Group_by
            { group_source = P.to_ast a.P.input; key; group_result = Some partial_selector },
          `Merge_groups (partials, merged_body, gvar, rebuild_key) )
    in
    let source_name = source_of_pipeline pipeline in
    let store = Catalog.store (Catalog.table cat source_name) in
    let nrows = Rowstore.length store in
    let workers = max 1 (min domains (max 1 nrows)) in
    (* One independent compiled plan per worker Domain, scanning whatever
       row range its mutable cell holds when it executes: static mode
       pins the cells once to the contiguous split, morsel mode re-aims
       them at each pulled work unit. *)
    let wplans =
      List.init workers (fun _ ->
          let range = ref (0, 0) in
          let override name =
            if String.equal name source_name then
              Some
                {
                  Nplan.ext_store = store;
                  ext_drive =
                    (fun emit ->
                      let lo, hi = !range in
                      for row = lo to hi - 1 do
                        emit row
                      done);
                }
            else None
          in
          (Nplan.compile ~override cat pipeline, range))
    in
    let codegen_ms = Lq_metrics.Profile.now_ms () -. start in
    (* The range cells and the shared morsel counter are per-execution
       scratch: concurrent executes of one cached prepared plan must not
       interleave on them. *)
    let exec_mu = Mutex.create () in
    let execute ?profile ~params () =
      let run () =
        Mutex.lock exec_mu;
        Fun.protect ~finally:(fun () -> Mutex.unlock exec_mu) @@ fun () ->
        (* Pre-intern string parameters on the coordinating domain: the
           workers' own bindings then only *read* the dictionary, which
           is safe. *)
        List.iter
          (fun (_, v) ->
            match v with
            | Value.Str s -> ignore (Lq_storage.Dict.intern (Catalog.dict cat) s : int)
            | _ -> ())
          params;
        let range_of, nmorsels =
          match mode with
          | Static ->
            ((fun m -> (m * nrows / workers, (m + 1) * nrows / workers)), workers)
          | Morsel ->
            (* Clamped so even a small table fans out across the workers. *)
            let unit_rows =
              max 1 (min (morsel_size ()) ((nrows + workers - 1) / workers))
            in
            let n = if nrows = 0 then 0 else (nrows + unit_rows - 1) / unit_rows in
            ((fun m -> (m * unit_rows, min nrows ((m + 1) * unit_rows))), n)
        in
        let next = Atomic.make 0 in
        let abort : exn option Atomic.t = Atomic.make None in
        let results = Array.make (max 1 nmorsels) [] in
        (* One work unit: a typed-fault / cancellation checkpoint, its
           own trace span, one compiled-plan pass over the range. *)
        let run_morsel (plan, range) m =
          let lo, hi = range_of m in
          match
            Lq_trace.Trace.with_span
              ~attrs:[ ("rows", string_of_int (max 0 (hi - lo))) ]
              Lq_trace.Trace.Morsel
              (Printf.sprintf "morsel-%d" m)
              (fun () ->
                Lq_fault.Inject.hit "parallel/morsel";
                range := (lo, hi);
                Nplan.execute plan ~params ())
          with
          | rows ->
            results.(m) <- rows;
            Lq_metrics.Counters.incr counters "parallel/morsels";
            true
          | exception exn ->
            ignore (Atomic.compare_and_set abort None (Some exn) : bool);
            false
        in
        let worker wid wp =
          Lq_trace.Trace.with_span Lq_trace.Trace.Partition
            (Printf.sprintf "partition-%d" wid)
            (fun () ->
              let processed = ref 0 in
              (match mode with
              | Static ->
                if wid < nmorsels && nrows > 0 && run_morsel wp wid then
                  incr processed
              | Morsel ->
                let continue = ref true in
                while !continue do
                  if Atomic.get abort <> None then continue := false
                  else begin
                    let m = Atomic.fetch_and_add next 1 in
                    if m >= nmorsels then continue := false
                    else if run_morsel wp m then incr processed
                    else continue := false
                  end
                done);
              Lq_trace.Trace.span_attr "morsels" (string_of_int !processed))
        in
        (match wplans with
        | [ only ] -> worker 0 only
        | first :: rest ->
          (* Hand the ambient trace context (if any) to the worker
             Domains: each re-installs it with its own span buffer, so
             partition spans land in the submitting request's trace
             without contending on the coordinator's buffer. *)
          let tctx = Lq_trace.Trace.current () in
          let handles =
            List.mapi
              (fun i wp ->
                Domain.spawn (fun () ->
                    Lq_trace.Trace.with_context tctx (fun () -> worker (i + 1) wp)))
              rest
          in
          worker 0 first;
          (* Join every worker before surfacing any failure — a crashed
             morsel must not leak still-running Domains. *)
          List.iter
            (fun h ->
              match Domain.join h with
              | () -> ()
              | exception exn ->
                ignore (Atomic.compare_and_set abort None (Some exn) : bool))
            handles
        | [] -> ());
        (match Atomic.get abort with
        | Some exn ->
          raise
            (Lq_fault.Fault
               (Lq_fault.classify ~stage:"execute" ~default:Lq_fault.Internal exn))
        | None -> ());
        Lq_metrics.Counters.incr counters "parallel/executions";
        (* Morsel-ordered reassembly: identical to the sequential row
           order however the units were scheduled. *)
        let results = Array.to_list results in
        let merged =
          match merge_kind with
          | `Concat -> List.concat results
          | `Merge_groups (partials, merged_body, gvar, rebuild_key) ->
            (* Combine partial accumulators per key, first-occurrence
               order across the ordered chunks. *)
            let table = Vtbl.create 256 in
            let order = ref [] in
            List.iter
              (List.iter (fun row ->
                   let k = rebuild_key row in
                   let accs =
                     List.mapi (fun i _ -> Value.field row (partial_name i)) partials
                   in
                   match Vtbl.find_opt table k with
                   | None ->
                     Vtbl.add table k (ref accs);
                     order := k :: !order
                   | Some cell ->
                     cell := List.map2 (fun p (a, b) -> combine p a b) partials
                         (List.combine !cell accs)))
              results;
            List.rev_map
              (fun k ->
                let accs = !(Vtbl.find table k) in
                let acc_record =
                  Value.Record
                    (Array.of_list
                       (List.mapi (fun i v -> (partial_name i, v)) accs))
                in
                let env =
                  [
                    ("__acc", acc_record);
                    (gvar, Eval.group_value ~key:k ~items:[]);
                  ]
                in
                Eval.expr (Eval.ctx ~params ()) ~env merged_body)
              !order
        in
        (* Sequential remainder over the merged rows. *)
        match remainder with
        | Ast.Source name when String.equal name merged_source -> merged
        | _ ->
          let ctx =
            Eval.ctx
              ~catalog:(fun name ->
                if String.equal name merged_source then merged
                else Catalog.rows (Catalog.table cat name))
              ~params ()
          in
          Eval.run ctx remainder
      in
      match profile with
      | None -> run ()
      | Some p ->
        Lq_metrics.Profile.time p
          (Printf.sprintf "Parallel scan+aggregate (%d domains, %s)" workers
             (match mode with Static -> "static split" | Morsel -> "morsels"))
          run
    in
    { Engine_intf.execute; codegen_ms; source = None }
  in
  {
    Engine_intf.name =
      (match name with
      | Some n -> n
      | None -> Printf.sprintf "compiled-c-parallel[%d]" domains);
    describe =
      (match mode with
      | Morsel ->
        "extension: morsel-driven domain-parallel native scans with \
         partial-aggregate merge"
      | Static ->
        "extension: statically partitioned domain-parallel native scans with \
         partial-aggregate merge");
    (* Partitioned scans only parallelize single-source pipelines whose
       aggregates merge; strings crossing Domains would need interning. *)
    caps =
      {
        Engine_intf.caps_any with
        needs_flat_sources = true;
        supports_correlated = false;
        supports_subqueries = false;
        supports_group_no_selector = false;
        supports_interning = false;
        max_sources = Some 1;
      };
    prepare;
  }

let default_domains = min 8 (Domain.recommended_domain_count ())

(* The default engine keeps a host-independent name so CLI invocations and
   reports are portable across machines. *)
let engine = make ~name:"compiled-c-parallel" ~domains:default_domains ()
let engine_with ~domains = make ~domains ()
