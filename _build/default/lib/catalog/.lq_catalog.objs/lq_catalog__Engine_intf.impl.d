lib/catalog/engine_intf.ml: Catalog Format Instr Lq_expr Lq_metrics Lq_value Value
