(** Request deadlines with cooperative cancellation.

    A deadline is an absolute point on the monotonic clock
    ({!Lq_metrics.Profile.now_ms}). Workers thread {!check} through the
    provider pipeline as its stage checkpoint: the instant a stage
    boundary is crossed past the deadline, the run aborts with
    {!Expired} instead of burning Domain time on an answer nobody is
    waiting for. *)

type t

exception Expired of string
(** Carries the pipeline stage at which the deadline fired
    (["queued"], ["optimized"], ["prepared"], …). *)

val after : ms:float -> t
(** A deadline [ms] milliseconds from now. *)

val at : float -> t
(** A deadline at an absolute {!Lq_metrics.Profile.now_ms} instant. *)

val expired : t -> bool
val remaining_ms : t -> float
(** Negative once expired. *)

val check : stage:string -> t option -> unit
(** @raise Expired naming [stage] when the deadline has passed.
    [None] never raises — requests without deadlines run to
    completion. *)
