open Lq_value
module Ast = Lq_expr.Ast
module Date = Lq_value.Date
module Dict = Lq_storage.Dict
module Rowstore = Lq_storage.Rowstore
module Engine_intf = Lq_catalog.Engine_intf

let unsupported = Engine_intf.unsupported

type cursor = { store : Rowstore.t; cell : int ref }

type t =
  | I of (unit -> int) * Vtype.t
  | F of (unit -> float)
  | B of (unit -> bool)

type elem =
  | Row of cursor * (string * int) list
  | Fields of (string * t) list
  | Scalar of t

let max_params = 64

type ctx = {
  dict : Dict.t;
  trace : (int -> unit) option;
  pints : int array;
  pfloats : float array;
  praws : Value.t array;
  mutable int_slots : (string * int) list;
  mutable float_slots : (string * int) list;
  mutable raw_slots : (string * int) list;
}

let ctx ?trace ~dict () =
  {
    dict;
    trace;
    pints = Array.make max_params 0;
    pfloats = Array.make max_params 0.0;
    praws = Array.make max_params Value.Null;
    int_slots = [];
    float_slots = [];
    raw_slots = [];
  }

let dict c = c.dict
let trace c = c.trace

let alloc_slot slots name =
  match List.assoc_opt name !slots with
  | Some slot -> slot
  | None ->
    let slot = List.length !slots in
    if slot >= max_params then unsupported "too many query parameters";
    slots := (name, slot) :: !slots;
    slot

let int_slot c name =
  let cell = ref c.int_slots in
  let slot = alloc_slot cell name in
  c.int_slots <- !cell;
  slot

let float_slot c name =
  let cell = ref c.float_slots in
  let slot = alloc_slot cell name in
  c.float_slots <- !cell;
  slot

let bind_params c params =
  let lookup name =
    match List.assoc_opt name params with
    | Some v -> v
    | None -> Lq_catalog.Engine_intf.execution_failed "unbound query parameter %S" name
  in
  List.iter
    (fun (name, slot) ->
      c.pints.(slot) <-
        (match lookup name with
        | Value.Int i -> i
        | Value.Date d -> d
        | Value.Bool b -> if b then 1 else 0
        | Value.Str s -> Dict.intern c.dict s
        | v ->
          Lq_catalog.Engine_intf.execution_failed
            "parameter %S: expected integer-like, got %s" name (Value.to_string v)))
    c.int_slots;
  List.iter
    (fun (name, slot) -> c.pfloats.(slot) <- Value.to_float (lookup name))
    c.float_slots;
  List.iter (fun (name, slot) -> c.praws.(slot) <- lookup name) c.raw_slots

(* ------------------------------------------------------------------ *)

let vty = function
  | I (_, ty) -> ty
  | F _ -> Vtype.Float
  | B _ -> Vtype.Bool

let as_int = function
  | I (f, _) -> f
  | B f -> fun () -> if f () then 1 else 0
  | F _ -> unsupported "expected an integer-typed native expression"

let as_float = function
  | F f -> f
  | I (f, Vtype.Int) -> fun () -> float_of_int (f ())
  | I (_, ty) -> unsupported "cannot use %s as float" (Vtype.to_string ty)
  | B _ -> unsupported "cannot use bool as float"

let as_bool = function
  | B f -> f
  | I (f, Vtype.Bool) -> fun () -> f () <> 0
  | I (_, ty) -> unsupported "expected bool, found %s" (Vtype.to_string ty)
  | F _ -> unsupported "expected bool, found float"

let key_part = function
  | I (f, _) -> f
  | B f -> fun () -> if f () then 1 else 0
  | F f -> fun () -> Int64.to_int (Int64.bits_of_float (f ()))

(* Hash-key images. A float's 64 bits do not fit one 63-bit OCaml int
   (truncation folds the sign bit away, conflating x and -x), so float
   keys contribute two parts. *)
let key_parts = function
  | I (f, _) -> [ f ]
  | B f -> [ (fun () -> if f () then 1 else 0) ]
  | F f ->
    [
      (fun () -> Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float (f ())) 32));
      (fun () -> Int64.to_int (Int64.logand (Int64.bits_of_float (f ())) 0xFFFFFFFFL));
    ]

let float_of_key_parts ~hi ~lo =
  Int64.float_of_bits
    (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

let to_value c = function
  | I (f, Vtype.Int) -> fun () -> Value.Int (f ())
  | I (f, Vtype.Date) -> fun () -> Value.Date (f ())
  | I (f, Vtype.Bool) -> fun () -> Value.Bool (f () <> 0)
  | I (f, Vtype.String) -> fun () -> Value.Str (Dict.get c.dict (f ()))
  | I (f, _) -> fun () -> Value.Int (f ())
  | F f -> fun () -> Value.Float (f ())
  | B f -> fun () -> Value.Bool (f ())

let reader_of ctx cursor col =
  let f = Lq_storage.Layout.field_at (Rowstore.layout cursor.store) col in
  let cell = cursor.cell in
  match f.Lq_storage.Layout.ftype with
  | Lq_storage.Ftype.F64 ->
    let r = Rowstore.float_reader ?trace:ctx.trace cursor.store col in
    F (fun () -> r !cell)
  | _ ->
    let r = Rowstore.int_reader ?trace:ctx.trace cursor.store col in
    I ((fun () -> r !cell), f.Lq_storage.Layout.vty)

let elem_to_value c = function
  | Scalar t -> to_value c t
  | Fields fields ->
    let names = Array.of_list (List.map fst fields) in
    let boxed = Array.of_list (List.map (fun (_, t) -> to_value c t) fields) in
    fun () -> Value.Record (Array.mapi (fun i f -> (names.(i), f ())) boxed)
  | Row (cursor, cols) ->
    (* Per-column readers with offsets resolved once (the §5.1 "return a
       pointer and decode in the caller" boundary). *)
    let cell = cursor.cell in
    let names = Array.of_list (List.map fst cols) in
    let readers =
      Array.of_list
        (List.map (fun (_, col) -> Rowstore.value_reader cursor.store col) cols)
    in
    fun () ->
      Value.Record (Array.mapi (fun i r -> (names.(i), r !cell)) readers)

let row_fields c cursor cols =
  List.map (fun (name, col) -> (name, reader_of c cursor col)) cols

let scalar_field = "__val"

let elem_fields c = function
  | Row (cursor, cols) -> row_fields c cursor cols
  | Fields fields -> fields
  | Scalar t -> [ (scalar_field, t) ]

(* Internal pre-typed form: parameters stay untyped until context fixes
   their register kind. *)
type pre =
  | T of t
  | P of string

let force c = function
  | T t -> t
  | P name ->
    let slot = int_slot c name in
    I ((fun () -> c.pints.(slot)), Vtype.Int)

let coerce_like c pre ~like =
  match pre with
  | T t -> t
  | P name -> (
    match like with
    | F _ ->
      let slot = float_slot c name in
      F (fun () -> c.pfloats.(slot))
    | I (_, ty) ->
      let slot = int_slot c name in
      I ((fun () -> c.pints.(slot)), ty)
    | B _ ->
      let slot = int_slot c name in
      B (fun () -> c.pints.(slot) <> 0))

let string_closure c t =
  match t with
  | I (f, Vtype.String) -> fun () -> Dict.get c.dict (f ())
  | _ -> unsupported "expected a string-typed native expression"

(* Static string constant, for precompiled pattern matchers. *)
let static_string (e : Ast.expr) =
  match e with
  | Ast.Const (Value.Str s) -> Some s
  | _ -> None

let arith_op (op : Ast.binop) =
  match op with
  | Ast.Add -> (( + ), ( +. ))
  | Ast.Sub -> (( - ), ( -. ))
  | Ast.Mul -> (( * ), ( *. ))
  | Ast.Div -> (( / ), ( /. ))
  | Ast.Mod -> ((fun a b -> a mod b), fun a b -> Float.rem a b)
  | _ -> assert false

let cmp_test (op : Ast.binop) =
  match op with
  | Ast.Eq -> fun c -> c = 0
  | Ast.Ne -> fun c -> c <> 0
  | Ast.Lt -> fun c -> c < 0
  | Ast.Le -> fun c -> c <= 0
  | Ast.Gt -> fun c -> c > 0
  | Ast.Ge -> fun c -> c >= 0
  | _ -> assert false

let no_agg _ _ _ = unsupported "aggregate outside a group context (native)"
let no_subquery _ = unsupported "nested sub-query (native backend)"

let compile c ~env ?(on_agg = no_agg) ?(on_subquery = no_subquery) expr =
  let rec go (e : Ast.expr) : pre =
    match e with
    | Ast.Const (Value.Int i) -> T (I ((fun () -> i), Vtype.Int))
    | Ast.Const (Value.Date d) -> T (I ((fun () -> d), Vtype.Date))
    | Ast.Const (Value.Bool b) -> T (B (fun () -> b))
    | Ast.Const (Value.Float f) -> T (F (fun () -> f))
    | Ast.Const (Value.Str s) ->
      let code = Dict.intern c.dict s in
      T (I ((fun () -> code), Vtype.String))
    | Ast.Const v -> unsupported "constant %s (native)" (Value.to_string v)
    | Ast.Param name -> P name
    | Ast.Var name -> (
      match List.assoc_opt name env with
      | Some (Scalar t) -> T t
      | Some (Row _ | Fields _) ->
        unsupported "whole-element use of %S (native backend needs scalars)" name
      | None -> unsupported "unbound variable %S (native)" name)
    | Ast.Member (Ast.Var name, field) -> (
      match List.assoc_opt name env with
      | Some (Row (cursor, cols)) -> (
        match List.assoc_opt field cols with
        | Some col -> T (reader_of c cursor col)
        | None -> unsupported "row has no member %S (native)" field)
      | Some (Fields fields) -> (
        match List.assoc_opt field fields with
        | Some t -> T t
        | None -> unsupported "element has no member %S (native)" field)
      | Some (Scalar _) -> unsupported "member %S of a scalar (native)" field
      | None -> unsupported "unbound variable %S (native)" name)
    | Ast.Member (_, field) ->
      unsupported "nested member access .%s (flat native data only)" field
    | Ast.Unop (Ast.Neg, e) -> (
      match force c (go e) with
      | I (f, Vtype.Int) -> T (I ((fun () -> -f ()), Vtype.Int))
      | F f -> T (F (fun () -> -.f ()))
      | _ -> unsupported "negation of non-numeric (native)")
    | Ast.Unop (Ast.Not, e) ->
      let f = as_bool (force c (go e)) in
      T (B (fun () -> not (f ())))
    | Ast.Binop (Ast.And, a, b) ->
      let fa = as_bool (force c (go a)) in
      let fb = as_bool (force c (go b)) in
      T (B (fun () -> fa () && fb ()))
    | Ast.Binop (Ast.Or, a, b) ->
      let fa = as_bool (force c (go a)) in
      let fb = as_bool (force c (go b)) in
      T (B (fun () -> fa () || fb ()))
    | Ast.Binop (op, a, b) ->
      let pa = go a and pb = go b in
      let ta, tb =
        match (pa, pb) with
        | T ta, T tb -> (ta, tb)
        | T ta, (P _ as pb) -> (ta, coerce_like c pb ~like:ta)
        | (P _ as pa), T tb -> (coerce_like c pa ~like:tb, tb)
        | (P _ as pa), (P _ as pb) -> (
          (* Two bare parameters: default to float registers (which also
             accept integer bindings) for arithmetic and comparisons;
             integer division/modulo semantics cannot be guessed. *)
          match op with
          | Ast.Div | Ast.Mod ->
            unsupported "integer-or-float division of two parameters (native)"
          | _ ->
            let like = F (fun () -> 0.0) in
            (coerce_like c pa ~like, coerce_like c pb ~like))
      in
      compile_binop op ta tb
    | Ast.If (cond, th, el) ->
      let fc = as_bool (force c (go cond)) in
      let pt = go th and pe = go el in
      (* Parameters in one branch take the other branch's type; two bare
         parameters default to integer registers. *)
      let tt, te =
        match (pt, pe) with
        | T a, T b -> (a, b)
        | T a, (P _ as pb) -> (a, coerce_like c pb ~like:a)
        | (P _ as pa), T b -> (coerce_like c pa ~like:b, b)
        | (P _ as pa), (P _ as pb) -> (force c pa, force c pb)
      in
      (match (tt, te) with
      | I (f1, ty1), I (f2, ty2) when Vtype.equal ty1 ty2 ->
        T (I ((fun () -> if fc () then f1 () else f2 ()), ty1))
      | B f1, B f2 -> T (B (fun () -> if fc () then f1 () else f2 ()))
      | (F _ | I (_, Vtype.Int)), (F _ | I (_, Vtype.Int)) ->
        let f1 = as_float tt and f2 = as_float te in
        T (F (fun () -> if fc () then f1 () else f2 ()))
      | _ -> unsupported "if branches of mismatched native types")
    | Ast.Call (f, args) -> T (compile_call f args)
    | Ast.Agg (kind, src, sel) -> T (on_agg kind src sel)
    | Ast.Subquery q -> T (on_subquery q)
    | Ast.Record_of _ ->
      unsupported "object construction inside a native scalar expression"
  and compile_binop op ta tb : pre =
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
      let int_op, float_op = arith_op op in
      match (ta, tb) with
      | I (fa, Vtype.Int), I (fb, Vtype.Int) ->
        T (I ((fun () -> int_op (fa ()) (fb ())), Vtype.Int))
      | (F _ | I (_, Vtype.Int)), (F _ | I (_, Vtype.Int)) ->
        let fa = as_float ta and fb = as_float tb in
        T (F (fun () -> float_op (fa ()) (fb ())))
      | _ ->
        unsupported "arithmetic on %s and %s (native)"
          (Vtype.to_string (vty ta)) (Vtype.to_string (vty tb)))
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      let test = cmp_test op in
      match (ta, tb) with
      | I (fa, Vtype.String), I (fb, Vtype.String) -> (
        match op with
        | Ast.Eq -> T (B (fun () -> fa () = fb ()))
        | Ast.Ne -> T (B (fun () -> fa () <> fb ()))
        | _ ->
          (* Ordering on strings requires decoding: dictionary codes are
             not order-preserving. *)
          let d = c.dict in
          T (B (fun () -> test (String.compare (Dict.get d (fa ())) (Dict.get d (fb ()))))))
      | I (fa, ty1), I (fb, ty2) when Vtype.equal ty1 ty2 ->
        T (B (fun () -> test (Int.compare (fa ()) (fb ()))))
      | (F _ | I (_, Vtype.Int)), (F _ | I (_, Vtype.Int)) ->
        let fa = as_float ta and fb = as_float tb in
        T (B (fun () -> test (Float.compare (fa ()) (fb ()))))
      | B fa, B fb -> T (B (fun () -> test (Bool.compare (fa ()) (fb ()))))
      | _ ->
        unsupported "comparison between %s and %s (native)"
          (Vtype.to_string (vty ta)) (Vtype.to_string (vty tb)))
    | Ast.And | Ast.Or -> assert false
  and compile_call f args : t =
    (* Arguments in known-type positions coerce parameters accordingly. *)
    let force_string e =
      coerce_like c (go e) ~like:(I ((fun () -> 0), Vtype.String))
    in
    let force_date e = coerce_like c (go e) ~like:(I ((fun () -> 0), Vtype.Date)) in
    match (f, args) with
    | (Ast.Starts_with | Ast.Ends_with | Ast.Contains | Ast.Like), [ subject; patt ]
      -> (
      let fs = string_closure c (force_string subject) in
      let pattern_of s =
        match f with
        | Ast.Starts_with -> s ^ "%"
        | Ast.Ends_with -> "%" ^ s
        | Ast.Contains -> "%" ^ s ^ "%"
        | _ -> s
      in
      match static_string patt with
      | Some s ->
        let pattern = pattern_of s in
        B (fun () -> Lq_expr.Scalar.like_match ~pattern (fs ()))
      | None ->
        let fp = string_closure c (force_string patt) in
        B (fun () -> Lq_expr.Scalar.like_match ~pattern:(pattern_of (fp ())) (fs ())))
    | Ast.Lower, [ e ] ->
      let fs = string_closure c (force_string e) in
      let d = c.dict in
      I ((fun () -> Dict.intern d (String.lowercase_ascii (fs ()))), Vtype.String)
    | Ast.Upper, [ e ] ->
      let fs = string_closure c (force_string e) in
      let d = c.dict in
      I ((fun () -> Dict.intern d (String.uppercase_ascii (fs ()))), Vtype.String)
    | Ast.Length, [ e ] ->
      let fs = string_closure c (force_string e) in
      I ((fun () -> String.length (fs ())), Vtype.Int)
    | Ast.Abs, [ e ] -> (
      match force c (go e) with
      | I (f, Vtype.Int) -> I ((fun () -> abs (f ())), Vtype.Int)
      | F f -> F (fun () -> Float.abs (f ()))
      | _ -> unsupported "Abs on non-numeric (native)")
    | Ast.Year, [ e ] -> (
      match force_date e with
      | I (f, Vtype.Date) -> I ((fun () -> Date.year (f ())), Vtype.Int)
      | _ -> unsupported "Year on non-date (native)")
    | Ast.Add_days, [ d; n ] -> (
      match (force_date d, force c (go n)) with
      | I (fd, Vtype.Date), I (fn, Vtype.Int) ->
        I ((fun () -> fd () + fn ()), Vtype.Date)
      | _ -> unsupported "AddDays arguments (native)")
    | _, _ -> unsupported "call %s (native)" (Lq_expr.Pretty.func_name f)
  in
  force c (go expr)
