lib/engines/vector/vector_engine.ml: Array Float Fun Hashtbl Int Int64 List Lq_catalog Lq_exec Lq_expr Lq_metrics Lq_storage Lq_value Option Printf String Value Vtype
