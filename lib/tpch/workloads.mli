(** Parameterized workloads for the figure sweeps of §7.

    Each workload isolates one operation class over TPC-H data with a
    selectivity knob realized as a date-cutoff parameter [@cutoff]
    (plus Q3's fixed market-segment filter for the join workload), exactly
    as §7.1–7.3 vary the selections. *)

open Lq_value

val aggregation : Lq_expr.Ast.query
(** Fig. 7/8: Q1's eight aggregates over lineitems with
    [l_shipdate <= @cutoff]. *)

val aggregation_n : int -> Lq_expr.Ast.query
(** Variable number of [Sum] aggregates over the same staged data (the
    §7.1 "varied the number of aggregates" experiment); [n >= 1]. *)

val sorting : Lq_expr.Ast.query
(** Fig. 9/10: lineitems with [l_shipdate <= @cutoff] sorted by
    [l_extendedprice] (result elements are the source rows, so the Min
    variant applies). *)

val join : Lq_expr.Ast.query
(** Fig. 11/12: the Q3 join with [l_shipdate <= @cutoff],
    [o_orderdate <= @cutoff] and the constant-selectivity market-segment
    filter; the result is the join's intermediate element. *)

val params : sel:float -> (string * Value.t) list
(** Parameter bindings realizing selectivity [sel] for any workload. *)

val service_mix : (string * Lq_expr.Ast.query * (int -> (string * Value.t) list)) list
(** Traffic mix for the query-service load generator: [(label, query,
    params_of)] triples spanning aggregation, sorting, the Q3 join and
    parameterized Q1/Q6/Q14. [params_of i] cycles a small set of
    parameter vectors, so sustained traffic repeats each (shape,
    parameters) combination — the compiled-plan (and, when enabled,
    result) caches should show hits under this mix. *)
