(** C#-like source listings of compiled plans.

    The paper's provider emits real C# and compiles it in-memory; our plans
    are built as closures instead, and this module renders the source a C#
    backend would have emitted for the same plan — the §4.1 [Executor]
    skeleton with one fused loop per segment. The listing is documentation
    (returned in {!Lq_catalog.Engine_intf.prepared}[.source] and shown by
    the CLI); it is derived from the same query tree the closure compiler
    consumes. *)

val emit : Lq_expr.Ast.query -> string
