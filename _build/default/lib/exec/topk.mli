(** Bounded top-K selection.

    §2.3 calls out [OrderBy] followed by [Take(N)] as a missed synergy in
    LINQ-to-objects: "a better approach would be to merge both operations
    and maintain a heap with the N highest/lowest values instead of sorting
    the entire input". This module is that heap; the compiled engines use
    it when the top-K fusion optimization is enabled. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> k:int -> 'a t
(** Keeps the [k] smallest elements under [cmp] (use a negated comparator
    for the largest). [k = 0] keeps nothing. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int

val to_sorted_list : 'a t -> 'a list
(** The kept elements in ascending [cmp] order. Ties preserve insertion
    order if the comparator includes a tie-break; otherwise unspecified. *)
