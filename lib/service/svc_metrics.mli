(** The service's observability: counters, gauges and latency
    distributions.

    One {!Lq_metrics.Counters} registry holds the ["service/"] family —
    submitted / completed / rejected (split into overload vs shutdown
    sheds) / timed-out / degraded / failed — next to a queue-depth gauge,
    while three {!Lq_metrics.Histogram}s track queue-wait, execution and
    total latency and a fourth tracks the queue depth seen at each
    admission.

    The invariant the whole layer is audited against:

    {v submitted = completed + rejected + timed-out + failed v}

    Every request the service ever admits or refuses lands in exactly one
    right-hand bucket — no silent drops. {!conserved} checks it,
    {!report} prints it. *)

type t

val create : unit -> t

val counters : t -> Lq_metrics.Counters.t
(** The raw registry (names are ["service/..."]), for tests and for
    merging into wider dashboards. *)

(* Recording — called by the service on state transitions. *)

val note_submitted : t -> unit
val note_rejected : t -> [ `Overload | `Shutdown ] -> unit
val note_degraded : t -> unit

val note_unsupported : t -> unit
(** The preferred engine's capability check refused the plan before any
    code generation was paid (distinct from [degraded], which also counts
    prepare/execute-time failures absorbed by the ladder). *)

val note_outcome : t -> Request.response -> unit
(** Buckets the terminal outcome (completed / timed-out / failed; [Shed]
    counts as a shutdown rejection) and feeds the latency histograms. *)

val observe_queue_depth : t -> int -> unit

(* Reading. *)

val submitted : t -> int
val completed : t -> int
val rejected : t -> int
val timed_out : t -> int
val degraded : t -> int
val unsupported : t -> int
val failed : t -> int

val queue_depth_peak : t -> int
val total_latency : t -> Lq_metrics.Histogram.t
val exec_latency : t -> Lq_metrics.Histogram.t
val queue_wait : t -> Lq_metrics.Histogram.t

val conserved : t -> bool
(** [submitted = completed + rejected + timed_out + failed]. Only
    meaningful once all outstanding futures have resolved (e.g. after
    {!Service.shutdown}). *)

val report : t -> string
(** Multi-line block: the counter family, the conservation equation with
    its verdict, queue-depth peak, and p50/p95/p99 for each latency
    histogram. *)
