module Ast = Lq_expr.Ast
module Pretty = Lq_expr.Pretty
module Catalog = Lq_catalog.Catalog
module Layout = Lq_storage.Layout

(* Renders C-flavoured scalar expressions: member access through struct
   pointers, parameters through the context struct. *)
let rec c_expr (e : Ast.expr) : string =
  match e with
  | Ast.Const v -> Lq_value.Value.to_string v
  | Ast.Param p -> Printf.sprintf "ctx->param_%s" p
  | Ast.Var v -> v
  | Ast.Member (Ast.Var v, f) -> Printf.sprintf "%s->%s" v f
  | Ast.Member (e, f) -> Printf.sprintf "%s.%s" (c_expr e) f
  | Ast.Unop (Ast.Neg, e) -> Printf.sprintf "-(%s)" (c_expr e)
  | Ast.Unop (Ast.Not, e) -> Printf.sprintf "!(%s)" (c_expr e)
  | Ast.Binop (op, a, b) ->
    let sym =
      match op with
      | Ast.Eq -> "=="
      | Ast.Ne -> "!="
      | Ast.And -> "&&"
      | Ast.Or -> "||"
      | other -> Pretty.binop_symbol other
    in
    Printf.sprintf "(%s %s %s)" (c_expr a) sym (c_expr b)
  | Ast.If (c, t, e) -> Printf.sprintf "(%s ? %s : %s)" (c_expr c) (c_expr t) (c_expr e)
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)"
      (String.lowercase_ascii (Pretty.func_name f))
      (String.concat ", " (List.map c_expr args))
  | Ast.Agg (kind, src, _) ->
    Printf.sprintf "/* fused %s over %s */ acc" (Pretty.agg_name kind) (c_expr src)
  | Ast.Subquery _ -> "/* pre-evaluated sub-query */ subq"
  | Ast.Record_of fields ->
    Printf.sprintf "{ %s }"
      (String.concat ", "
         (List.map (fun (n, e) -> Printf.sprintf ".%s = %s" n (c_expr e)) fields))

let lambda_inlined (l : Ast.lambda) ~args =
  c_expr (Ast.subst (List.combine l.Ast.params args) l.Ast.body)

type emit_ctx = { buf : Buffer.t; mutable tmp : int; mutable structs : string list }

let temp ec prefix =
  ec.tmp <- ec.tmp + 1;
  Printf.sprintf "%s_%d" prefix ec.tmp

let line ec indent fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ec.buf (String.make (indent * 2) ' ');
      Buffer.add_string ec.buf s;
      Buffer.add_char ec.buf '\n')
    fmt

let rec emit_query ec cat (q : Ast.query) ~indent ~(body : string -> int -> unit) =
  match q with
  | Ast.Source name ->
    (match Catalog.store (Catalog.table cat name) with
    | store ->
      ec.structs <-
        Layout.c_struct ~name:(name ^ "_t") (Lq_storage.Rowstore.layout store)
        :: ec.structs
    | exception _ -> ());
    let v = temp ec "elem" in
    line ec indent "for (i = ctx->curr_%s; i < ctx->%s_size; i++) {" name name;
    line ec (indent + 1) "%s_t* %s = &(ctx->%s[i]);" name v name;
    body v (indent + 1);
    line ec indent "}"
  | Ast.Where (src, pred) ->
    emit_query ec cat src ~indent ~body:(fun v i ->
        line ec i "if (%s) {" (lambda_inlined pred ~args:[ Ast.Var v ]);
        body v (i + 1);
        line ec i "}")
  | Ast.Select (src, sel) ->
    emit_query ec cat src ~indent ~body:(fun v i ->
        let out = temp ec "val" in
        line ec i "/* pending projection, no materialization */";
        line ec i "val_t %s = %s;" out (lambda_inlined sel ~args:[ Ast.Var v ]);
        body out i)
  | Ast.Join j ->
    let ht = temp ec "ht" in
    line ec indent "ht_t* %s = ht_create(ctx);  /* open addressing, flat */" ht;
    emit_query ec cat j.right ~indent ~body:(fun v i ->
        line ec i "ht_insert(%s, %s, %s);  /* spill row into intermediate */" ht
          (lambda_inlined j.right_key ~args:[ Ast.Var v ])
          v);
    emit_query ec cat j.left ~indent ~body:(fun v i ->
        let m = temp ec "match" in
        line ec i "for (%s = ht_probe(%s, %s); %s; %s = %s->next) {" m ht
          (lambda_inlined j.left_key ~args:[ Ast.Var v ])
          m m m;
        let out = temp ec "val" in
        line ec (i + 1) "val_t %s = %s;" out
          (lambda_inlined j.result ~args:[ Ast.Var v; Ast.Var m ]);
        body out (i + 1);
        line ec i "}")
  | Ast.Group_by { group_source; key; group_result } ->
    let ht = temp ec "agg" in
    line ec indent "agg_t* %s = agg_create(ctx);  /* dense slots + unboxed accumulator arrays */" ht;
    emit_query ec cat group_source ~indent ~body:(fun v i ->
        line ec i "slot = agg_slot(%s, %s);" ht (lambda_inlined key ~args:[ Ast.Var v ]);
        line ec i "agg_update_all(%s, slot, %s);  /* every aggregate, one pass */" ht v);
    let g = temp ec "g" in
    line ec indent "for (slot = 0; slot < %s->count; slot++) {" ht;
    (match group_result with
    | None -> body (ht ^ "[slot]") (indent + 1)
    | Some sel ->
      let out = temp ec "val" in
      line ec (indent + 1) "val_t %s = %s;  /* reads accumulator arrays */" out
        (lambda_inlined sel ~args:[ Ast.Var g ]);
      body out (indent + 1));
    line ec indent "}"
  | Ast.Order_by (src, keys) ->
    let buf = temp ec "sortbuf" in
    line ec indent "buffer_t* %s = buffer_create(ctx);  /* flat intermediate */" buf;
    emit_query ec cat src ~indent ~body:(fun v i ->
        line ec i "buffer_append(%s, %s);  /* plus key columns */" buf v);
    let keydoc =
      String.concat ", "
        (List.map
           (fun (k : Ast.sort_key) ->
             Printf.sprintf "%s %s"
               (Pretty.expr_to_string k.Ast.by.Ast.body)
               (match k.Ast.dir with Ast.Asc -> "asc" | Ast.Desc -> "desc"))
           keys)
    in
    line ec indent "quicksort(%s->keys /* %s */, %s->index, %s->count);" buf keydoc buf buf;
    let v = temp ec "elem" in
    line ec indent "for (i = 0; i < %s->count; i++) {" buf;
    line ec (indent + 1) "row_t* %s = buffer_at(%s, %s->index[i]);" v buf buf;
    body v (indent + 1);
    line ec indent "}"
  | Ast.Take (src, n) ->
    emit_query ec cat src ~indent ~body:(fun v i ->
        body v i;
        line ec i "if (++ctx->taken >= %s) return 0;" (c_expr n))
  | Ast.Skip (src, n) ->
    emit_query ec cat src ~indent ~body:(fun v i ->
        line ec i "if (ctx->skipped++ < %s) continue;" (c_expr n);
        body v i)
  | Ast.Distinct src ->
    let ht = temp ec "seen" in
    line ec indent "ht_t* %s = ht_create(ctx);" ht;
    emit_query ec cat src ~indent ~body:(fun v i ->
        line ec i "if (ht_add_if_new(%s, %s)) {" ht v;
        body v (i + 1);
        line ec i "}")

let emit cat (q : Ast.query) =
  let ec = { buf = Buffer.create 2048; tmp = 0; structs = [] } in
  let body = Buffer.create 2048 in
  let ec_body = { ec with buf = body } in
  emit_query ec_body cat q ~indent:1 ~body:(fun v i ->
      line ec_body i "ctx->out_elem = %s;" v;
      line ec_body i "ctx->curr_elem = i + 1;  /* resume point (deferred execution) */";
      line ec_body i "return 1;");
  let out = Buffer.create 4096 in
  Buffer.add_string out "/* generated C (native backend) */\n";
  Buffer.add_string out "#include <stdint.h>\n\n";
  List.iter
    (fun s ->
      Buffer.add_string out s;
      Buffer.add_char out '\n')
    (List.rev ec_body.structs);
  Buffer.add_string out
    "typedef struct Context {\n\
    \  /* input pointers, parameters, resume state */\n\
    \  int64_t curr_elem;\n\
    \  void*   out_elem;\n\
    \  int64_t taken, skipped;\n\
     } Context;\n\n";
  Buffer.add_string out "int EvaluateQuery(Context* ctx) {\n  int64_t i, slot;\n";
  Buffer.add_buffer out body;
  Buffer.add_string out "  return 0;  /* exhausted */\n}\n";
  Buffer.contents out
