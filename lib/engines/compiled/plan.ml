open Lq_value
module Ast = Lq_expr.Ast
module Eval = Lq_expr.Eval
module Scalar = Lq_expr.Scalar
module Catalog = Lq_catalog.Catalog
module Engine_intf = Lq_catalog.Engine_intf
module Ptbl = Lq_enum.Ptbl
module P = Lq_plan.Plan

exception Enough
(** Raised by a [Take] against its own upstream once satisfied; caught by
    the [Take] node itself (deferred execution: stop pulling early). *)

(* One compiled operator: elements are communicated by writing the frame
   slot [slot] and invoking the consumer closure. *)
type node = {
  slot : int;
  ty : Vtype.t option;
  run : Cexpr.rt -> (unit -> unit) -> unit;
  segments : int;  (** loop segments below and including this node *)
}

type t = {
  ctx : Cexpr.ctx;
  cat : Catalog.t;
  root : node;
  eval_ctx_cell : Eval.ctx option ref;  (** set per execution, for sub-queries *)
  epoch : int ref;
  mu : Mutex.t;
      (** [eval_ctx_cell], [epoch] and the group finalizers'
          [current_states] cell are plan-level; one execution at a time *)
}

(* Per-group accumulator machinery. A group's state is one [astate] per
   accumulator; the universal record covers int/float/value/count shapes. *)
type astate = {
  mutable acc_i : int;
  mutable acc_f : float;
  mutable acc_v : Value.t;
  mutable acc_n : int;
}

let new_astate () = { acc_i = 0; acc_f = 0.0; acc_v = Value.Null; acc_n = 0 }

type accum = {
  update : Cexpr.rt -> astate -> unit;  (** element is bound in the frame *)
  finalize : astate -> Value.t;
  result_ty : Vtype.t option;
}

let compile ?(options = Options.default) ?instr cat (query : Ast.query) : t =
  (* Instrumented runs model the managed heap traffic: source pulls touch
     the object header plus the member slots the query reads; every
     constructed result object is a modelled allocation. *)
  let note_alloc v =
    (match (instr, v) with
    | Some instr, Value.Record fields ->
      ignore
        (Lq_catalog.Instr.alloc_and_touch instr ~nfields:(Array.length fields) : int)
    | _ -> ());
    v
  in
  let ctx = Cexpr.ctx () in
  let eval_ctx_cell = ref None in
  let epoch = ref 0 in
  let eval_ctx () =
    match !eval_ctx_cell with
    | Some c -> c
    | None -> Lq_catalog.Engine_intf.execution_failed "Plan: executed without evaluation context"
  in
  (* Uncorrelated sub-query / whole-aggregate expressions are constant per
     execution: pre-evaluate on first touch, cache per epoch. *)
  let per_execution_value (e : Ast.expr) : Cexpr.compiled =
    let cache = ref (-1, Value.Null) in
    fun _rt ->
      let ep, v = !cache in
      if ep = !epoch then v
      else begin
        let v = Eval.expr (eval_ctx ()) ~env:[] e in
        cache := (!epoch, v);
        v
      end
  in
  let on_subquery q =
    if Ast.is_correlated q then
      Engine_intf.unsupported
        "correlated sub-query (decorrelate first): %s"
        (Lq_expr.Pretty.query_to_string q)
    else ((per_execution_value (Ast.Subquery q) : Cexpr.compiled), None)
  in
  let on_agg_outside kind src sel =
    match src with
    | Ast.Subquery q when not (Ast.is_correlated q) ->
      (per_execution_value (Ast.Agg (kind, src, sel)), None)
    | _ ->
      Engine_intf.unsupported "aggregate over %s outside a group"
        (Lq_expr.Pretty.expr_to_string src)
  in
  let compile_expr ~env e =
    Cexpr.compile ctx ~env ~on_agg:on_agg_outside ~on_subquery e
  in
  let compile_pred ~env e =
    let c, _ = compile_expr ~env e in
    fun rt -> Value.to_bool (c rt)
  in
  let bind1 (l : Ast.lambda) node : Cexpr.binding list =
    match l.Ast.params with
    | [ p ] -> [ { Cexpr.var = p; slot = node.slot; vty = node.ty } ]
    | _ -> Engine_intf.unsupported "lambda arity"
  in
  (* Build an accumulator for one [Agg] over the group's elements; the
     element is bound at [elem_binding] while updates run. *)
  let make_accum ~elem_binding (kind, sel) : accum =
    let compiled_sel =
      match sel with
      | None ->
        let b : Cexpr.binding = elem_binding in
        (((fun rt -> Array.unsafe_get rt.Cexpr.frame b.Cexpr.slot) : Cexpr.compiled), b.Cexpr.vty)
      | Some (l : Ast.lambda) -> (
        match l.Ast.params with
        | [ p ] ->
          compile_expr
            ~env:[ { Cexpr.var = p; slot = elem_binding.Cexpr.slot; vty = elem_binding.Cexpr.vty } ]
            l.Ast.body
        | _ -> Engine_intf.unsupported "aggregate selector arity")
    in
    let csel, sel_ty = compiled_sel in
    match (kind : Ast.agg) with
    | Ast.Count ->
      {
        update = (fun _rt st -> st.acc_n <- st.acc_n + 1);
        finalize = (fun st -> Value.Int st.acc_n);
        result_ty = Some Vtype.Int;
      }
    | Ast.Sum -> (
      match sel_ty with
      | Some Vtype.Int ->
        {
          update = (fun rt st -> st.acc_i <- st.acc_i + Value.to_int (csel rt));
          finalize = (fun st -> Value.Int st.acc_i);
          result_ty = Some Vtype.Int;
        }
      | Some Vtype.Float ->
        {
          update = (fun rt st -> st.acc_f <- st.acc_f +. Value.to_float (csel rt));
          finalize = (fun st -> Value.Float st.acc_f);
          result_ty = Some Vtype.Float;
        }
      | _ ->
        {
          update =
            (fun rt st ->
              let v = csel rt in
              st.acc_n <- st.acc_n + 1;
              st.acc_v <-
                (if st.acc_n = 1 then v else Scalar.binop Ast.Add st.acc_v v));
          finalize = (fun st -> if st.acc_n = 0 then Value.Int 0 else st.acc_v);
          result_ty = None;
        })
    | Ast.Avg ->
      {
        update =
          (fun rt st ->
            st.acc_f <- st.acc_f +. Value.to_float (csel rt);
            st.acc_n <- st.acc_n + 1);
        finalize =
          (fun st ->
            if st.acc_n = 0 then Value.Null
            else Value.Float (st.acc_f /. float_of_int st.acc_n));
        result_ty = Some Vtype.Float;
      }
    | Ast.Min ->
      {
        update =
          (fun rt st ->
            let v = csel rt in
            st.acc_n <- st.acc_n + 1;
            if st.acc_n = 1 || Scalar.cmp v st.acc_v < 0 then st.acc_v <- v);
        finalize = (fun st -> if st.acc_n = 0 then Value.Null else st.acc_v);
        result_ty = sel_ty;
      }
    | Ast.Max ->
      {
        update =
          (fun rt st ->
            let v = csel rt in
            st.acc_n <- st.acc_n + 1;
            if st.acc_n = 1 || Scalar.cmp v st.acc_v > 0 then st.acc_v <- v);
        finalize = (fun st -> if st.acc_n = 0 then Value.Null else st.acc_v);
        result_ty = sel_ty;
      }
  in
  let value_tbl () = Ptbl.create ~eq:Value.equal ~hash:Value.hash 256 in
  let rec compile_plan (p : P.t) : node =
    match p.P.op with
    | P.Scan s ->
      let table = Catalog.table cat s.P.table in
      let rows = Catalog.boxed table in
      let slot = Cexpr.alloc_slot ctx in
      let ty = Some (Schema.to_vtype (Catalog.schema table)) in
      let run =
        match instr with
        | None ->
          fun rt sink ->
            let frame = rt.Cexpr.frame in
            for i = 0 to Array.length rows - 1 do
              Array.unsafe_set frame slot (Array.unsafe_get rows i);
              sink ()
            done
        | Some instr ->
          let addrs = Catalog.heap_addrs table in
          let slots =
            Lq_catalog.Access_model.used_source_slots (Catalog.schema table) query
          in
          fun rt sink ->
            let frame = rt.Cexpr.frame in
            for i = 0 to Array.length rows - 1 do
              Lq_catalog.Instr.trace_object instr ~base:addrs.(i) ~slots;
              Array.unsafe_set frame slot (Array.unsafe_get rows i);
              sink ()
            done
      in
      { slot; ty; segments = 1; run }
    | P.Filter (input, preds) ->
      (* The lowering delivers conjuncts cheapest-first; wrapping in list
         order places the cheapest test innermost, i.e. evaluated first. *)
      List.fold_left
        (fun node (pr : P.pred) ->
          let cpred = compile_pred ~env:(bind1 pr.P.lambda node) pr.P.lambda.Ast.body in
          {
            node with
            run = (fun rt sink -> node.run rt (fun () -> if cpred rt then sink ()));
          })
        (compile_plan input) preds
    | P.Project (input, sel) ->
      let node = compile_plan input in
      let csel, out_ty = compile_expr ~env:(bind1 sel node) sel.Ast.body in
      let out = Cexpr.alloc_slot ctx in
      {
        slot = out;
        ty = out_ty;
        segments = node.segments;
        run =
          (fun rt sink ->
            node.run rt (fun () ->
                rt.Cexpr.frame.(out) <- note_alloc (csel rt);
                sink ()));
      }
    | P.Join { left; right; left_key; right_key; result; strategy } ->
      let lnode = compile_plan left in
      let rnode = compile_plan right in
      let clkey, _ = compile_expr ~env:(bind1 left_key lnode) left_key.Ast.body in
      let crkey, _ = compile_expr ~env:(bind1 right_key rnode) right_key.Ast.body in
      let renv =
        match result.Ast.params with
        | [ pl; pr ] ->
          [
            { Cexpr.var = pl; slot = lnode.slot; vty = lnode.ty };
            { Cexpr.var = pr; slot = rnode.slot; vty = rnode.ty };
          ]
        | _ -> Engine_intf.unsupported "join result selector arity"
      in
      let cresult, out_ty = compile_expr ~env:renv result.Ast.body in
      let out = Cexpr.alloc_slot ctx in
      if strategy = `Hash then
        {
          slot = out;
          ty = out_ty;
          segments = lnode.segments + rnode.segments;
          run =
            (fun rt sink ->
              (* Build side: materialize the right input into a hash table
                 (one loop segment)... *)
              let tbl = value_tbl () in
              (try
                 rnode.run rt (fun () ->
                     let row = rt.Cexpr.frame.(rnode.slot) in
                     let key = crkey rt in
                     match Ptbl.find_opt tbl key with
                     | Some cell -> cell := row :: !cell
                     | None -> Ptbl.add tbl key (ref [ row ]))
               with Enough -> ());
              (* ...probe side: stream the left input through the table. *)
              lnode.run rt (fun () ->
                  match Ptbl.find_opt tbl (clkey rt) with
                  | None -> ()
                  | Some cell ->
                    List.iter
                      (fun row ->
                        rt.Cexpr.frame.(rnode.slot) <- row;
                        rt.Cexpr.frame.(out) <- note_alloc (cresult rt);
                        sink ())
                      (List.rev !cell)));
        }
      else
        {
          slot = out;
          ty = out_ty;
          segments = lnode.segments + rnode.segments;
          run =
            (fun rt sink ->
              (* Nested-loops variant (the Steno-style baseline). *)
              let rows = ref [] in
              (try rnode.run rt (fun () -> rows := rt.Cexpr.frame.(rnode.slot) :: !rows)
               with Enough -> ());
              let rows = List.rev !rows in
              lnode.run rt (fun () ->
                  let lkey = clkey rt in
                  List.iter
                    (fun row ->
                      rt.Cexpr.frame.(rnode.slot) <- row;
                      if Value.equal lkey (crkey rt) then begin
                        rt.Cexpr.frame.(out) <- cresult rt;
                        sink ()
                      end)
                    rows));
        }
    | P.Aggregate a -> compile_aggregate a
    | P.Sort (input, keys) -> compile_order_by input keys
    | P.Top_k { input; keys; limit } -> compile_topk input keys limit
    | P.Limit (input, n) ->
      let node = compile_plan input in
      let cn, _ = compile_expr ~env:[] n in
      {
        node with
        run =
          (fun rt sink ->
            let limit = Value.to_int (cn rt) in
            if limit > 0 then begin
              let emitted = ref 0 in
              try
                node.run rt (fun () ->
                    sink ();
                    incr emitted;
                    if !emitted >= limit then raise Enough)
              with Enough -> ()
            end);
      }
    | P.Offset (input, n) ->
      let node = compile_plan input in
      let cn, _ = compile_expr ~env:[] n in
      {
        node with
        run =
          (fun rt sink ->
            let limit = Value.to_int (cn rt) in
            let seen = ref 0 in
            node.run rt (fun () ->
                incr seen;
                if !seen > limit then sink ()));
      }
    | P.Distinct input ->
      let node = compile_plan input in
      {
        node with
        run =
          (fun rt sink ->
            let seen = value_tbl () in
            node.run rt (fun () ->
                let v = rt.Cexpr.frame.(node.slot) in
                if not (Ptbl.mem seen v) then begin
                  Ptbl.add seen v ();
                  sink ()
                end));
      }
  and compile_aggregate (a : P.aggregate) : node =
    let node = compile_plan a.P.input in
    let key = a.P.key in
    let ckey, key_ty = compile_expr ~env:(bind1 key node) key.Ast.body in
    let group_ty items_ty =
      match (key_ty, items_ty) with
      | Some kt, Some it ->
        Some
          (Vtype.Record
             [ (Ast.group_key_field, kt); (Ast.group_items_field, Vtype.List it) ])
      | _ -> None
    in
    match a.P.group_result with
    | None ->
      (* Emit the group values themselves; items must be kept. *)
      let out = Cexpr.alloc_slot ctx in
      {
        slot = out;
        ty = group_ty node.ty;
        segments = node.segments + 1;
        run =
          (fun rt sink ->
            let tbl = value_tbl () in
            let order = ref [] in
            (try
               node.run rt (fun () ->
                   let v = rt.Cexpr.frame.(node.slot) in
                   let k = ckey rt in
                   match Ptbl.find_opt tbl k with
                   | Some items -> items := v :: !items
                   | None ->
                     let items = ref [ v ] in
                     Ptbl.add tbl k items;
                     order := (k, items) :: !order)
             with Enough -> ());
            List.iter
              (fun (k, items) ->
                rt.Cexpr.frame.(out) <-
                  Eval.group_value ~key:k ~items:(List.rev !items);
                sink ())
              (List.rev !order));
      }
    | Some result ->
      let gparam =
        match result.Ast.params with
        | [ p ] -> p
        | _ -> Engine_intf.unsupported "group result selector arity"
      in
      (* The fused-aggregation contract: [Agg] nodes whose source is the
         group variable finalize accumulators from the plan's registry
         (built, deduplicated and slot-mapped by the shared lowering); the
         rest of the body reads the group record bound at [g_slot]. *)
      let g_slot = Cexpr.alloc_slot ctx in
      let elem_binding = { Cexpr.var = "__elem"; slot = node.slot; vty = node.ty } in
      let reg = P.Registry.of_aggregate a in
      let accum_arr =
        Array.init (P.Registry.length reg) (fun i ->
            let s = P.Registry.spec reg i in
            make_accum ~elem_binding (s.P.agg, s.P.sel))
      in
      let current_states = ref [||] in
      let keep_items = a.P.keep_items in
      let on_agg kind src sel =
        match src with
        | Ast.Var v when String.equal v gparam ->
          if a.P.fused then begin
            let idx = P.Registry.next reg kind sel in
            let acc = accum_arr.(idx) in
            ((fun _rt -> acc.finalize !current_states.(idx)), acc.result_ty)
          end
          else begin
            (* Unfused: re-walk the group's item list per aggregate, like
               LINQ-to-objects does (the lowering kept the items). *)
            let csel =
              match sel with
              | None -> None
              | Some (l : Ast.lambda) -> (
                match l.Ast.params with
                | [ p ] ->
                  let slot = Cexpr.alloc_slot ctx in
                  let c, _ =
                    compile_expr
                      ~env:[ { Cexpr.var = p; slot; vty = node.ty } ]
                      l.Ast.body
                  in
                  Some (slot, c)
                | _ -> Engine_intf.unsupported "aggregate selector arity")
            in
            ( (fun rt ->
                let g = rt.Cexpr.frame.(g_slot) in
                let items = Value.to_elements g in
                let selected =
                  match csel with
                  | None -> items
                  | Some (slot, c) ->
                    List.map
                      (fun item ->
                        rt.Cexpr.frame.(slot) <- item;
                        c rt)
                      items
                in
                Eval.aggregate kind selected),
              None )
          end
        | Ast.Subquery _ -> on_agg_outside kind src sel
        | _ ->
          Engine_intf.unsupported "aggregate over %s inside a group"
            (Lq_expr.Pretty.expr_to_string src)
      in
      (* The group record type: Items type only populated when kept. *)
      let g_ty = group_ty node.ty in
      let cbody, out_ty =
        Cexpr.compile ctx
          ~env:[ { Cexpr.var = gparam; slot = g_slot; vty = g_ty } ]
          ~on_agg ~on_subquery
          result.Ast.body
      in
      let naccs = Array.length accum_arr in
      let out = Cexpr.alloc_slot ctx in
      {
        slot = out;
        ty = out_ty;
        segments = node.segments + 1;
        run =
          (fun rt sink ->
            let tbl = value_tbl () in
            let order = ref [] in
            (try
               node.run rt (fun () ->
                   let v = rt.Cexpr.frame.(node.slot) in
                   let k = ckey rt in
                   let state =
                     match Ptbl.find_opt tbl k with
                     | Some st -> st
                     | None ->
                       let st =
                         ( Array.init naccs (fun _ -> new_astate ()),
                           ref [] )
                       in
                       Ptbl.add tbl k st;
                       order := (k, st) :: !order;
                       st
                   in
                   let states, items = state in
                   (* The element stays bound at node.slot while the
                      accumulators read their selectors. *)
                   Array.iteri (fun i st -> accum_arr.(i).update rt st) states;
                   if keep_items then items := v :: !items)
             with Enough -> ());
            List.iter
              (fun (k, (states, items)) ->
                current_states := states;
                rt.Cexpr.frame.(g_slot) <-
                  Eval.group_value ~key:k
                    ~items:(if keep_items then List.rev !items else []);
                rt.Cexpr.frame.(out) <- note_alloc (cbody rt);
                sink ())
              (List.rev !order));
      }
  and compile_order_by (input : P.t) keys : node =
    let node = compile_plan input in
    let ckeys =
      List.map
        (fun (k : Ast.sort_key) ->
          let c, _ = compile_expr ~env:(bind1 k.Ast.by node) k.Ast.by.Ast.body in
          let sign = match k.Ast.dir with Ast.Asc -> 1 | Ast.Desc -> -1 in
          (c, sign))
        keys
    in
    {
      node with
      segments = node.segments + 1;
      run =
        (fun rt sink ->
          (* Materialize elements and pre-extract the key columns, then
             sort an index array — the layout of §7.2. *)
          let elems = ref [] in
          (try node.run rt (fun () -> elems := rt.Cexpr.frame.(node.slot) :: !elems)
           with Enough -> ());
          let arr = Array.of_list (List.rev !elems) in
          let n = Array.length arr in
          let key_cols =
            List.map
              (fun (c, sign) ->
                let col =
                  Array.map
                    (fun v ->
                      rt.Cexpr.frame.(node.slot) <- v;
                      c rt)
                    arr
                in
                (col, sign))
              ckeys
          in
          let idx = Array.init n Fun.id in
          let cmp i j =
            let rec go = function
              | [] -> Int.compare i j
              | (col, sign) :: rest ->
                let c = sign * Scalar.cmp col.(i) col.(j) in
                if c <> 0 then c else go rest
            in
            go key_cols
          in
          Lq_exec.Quicksort.indices_by ~cmp idx;
          Array.iter
            (fun i ->
              rt.Cexpr.frame.(node.slot) <- arr.(i);
              sink ())
            idx);
    }
  and compile_topk (input : P.t) keys n : node =
    let node = compile_plan input in
    let ckeys =
      List.map
        (fun (k : Ast.sort_key) ->
          let c, _ = compile_expr ~env:(bind1 k.Ast.by node) k.Ast.by.Ast.body in
          let sign = match k.Ast.dir with Ast.Asc -> 1 | Ast.Desc -> -1 in
          (c, sign))
        keys
    in
    let cn, _ = compile_expr ~env:[] n in
    {
      node with
      segments = node.segments + 1;
      run =
        (fun rt sink ->
          let limit = Value.to_int (cn rt) in
          (* Keyed heap entries (keys, seq, element); seq breaks ties so the
             fused operator matches a stable sort + take exactly. *)
          let cmp (ka, sa, _) (kb, sb, _) =
            let rec go ks1 ks2 signs =
              match (ks1, ks2, signs) with
              | [], [], [] -> Int.compare sa sb
              | a :: r1, b :: r2, (_, sign) :: rs ->
                let c = sign * Scalar.cmp a b in
                if c <> 0 then c else go r1 r2 rs
              | _ -> assert false
            in
            go ka kb ckeys
          in
          let heap = Lq_exec.Topk.create ~cmp ~k:limit in
          let seq = ref 0 in
          (try
             node.run rt (fun () ->
                 let ks = List.map (fun (c, _) -> c rt) ckeys in
                 Lq_exec.Topk.push heap (ks, !seq, rt.Cexpr.frame.(node.slot));
                 incr seq)
           with Enough -> ());
          List.iter
            (fun (_, _, v) ->
              rt.Cexpr.frame.(node.slot) <- v;
              sink ())
            (Lq_exec.Topk.to_sorted_list heap));
    }
  in
  let root = compile_plan (Lq_plan.Lower.lower ~options cat query) in
  { ctx; cat; root; eval_ctx_cell; epoch; mu = Mutex.create () }

(* The cache shares one plan with every Domain; executions of the same
   plan serialize on its lock (distinct plans still run in parallel). *)
let execute t ~params =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let rt = Cexpr.make_rt t.ctx ~params in
      incr t.epoch;
      t.eval_ctx_cell := Some (Catalog.eval_ctx t.cat ~params);
      let acc = ref [] in
      t.root.run rt (fun () -> acc := rt.Cexpr.frame.(t.root.slot) :: !acc);
      List.rev !acc)

let loop_segments t = t.root.segments
