(** A bounded, weighted, string-keyed LRU store.

    The shared eviction substrate of the caching layer: {!Query_cache}
    bounds by entry count, {!Result_cache} by entry count *and* by total
    weight (cached rows). Recency order is maintained with an intrusive
    doubly-linked list, so every operation is O(1) in the number of
    entries ({!drop_where} excepted).

    Capacity semantics: a negative bound means unlimited, [0] disables
    the store entirely (nothing is ever admitted), and a positive bound
    is enforced by evicting least-recently-used entries.

    Not synchronized — callers (the caches) hold their own mutex. *)

type 'a t

val create : ?max_entries:int -> ?max_weight:int -> unit -> 'a t
(** Both bounds default to [-1] (unlimited). *)

val find : 'a t -> string -> 'a option
(** Lookup that promotes the entry to most-recently-used. *)

val peek : 'a t -> string -> 'a option
(** Lookup without touching recency order. *)

val mem : 'a t -> string -> bool

val add : 'a t -> key:string -> ?weight:int -> 'a -> (string * 'a) list option
(** Inserts (or replaces) an entry of the given weight (default 1).
    Returns [Some evicted] — the entries displaced to restore the bounds,
    least-recently-used first — or [None] when the entry was not admitted
    at all (store disabled, or the entry alone exceeds [max_weight]). *)

val remove : 'a t -> string -> 'a option
val peek_lru : 'a t -> (string * 'a) option
(** The entry next in line for eviction. *)

val pop_lru : 'a t -> (string * 'a) option

val drop_where : 'a t -> (string -> 'a -> bool) -> int
(** Removes every entry matching the predicate; returns how many. O(n). *)

val length : 'a t -> int
val total_weight : 'a t -> int
val max_entries : 'a t -> int
val max_weight : 'a t -> int
val clear : 'a t -> unit

val to_alist : 'a t -> (string * 'a) list
(** Entries most-recently-used first. *)
