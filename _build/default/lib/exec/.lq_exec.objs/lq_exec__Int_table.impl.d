lib/exec/int_table.ml: Array
