lib/expr/ast.ml: List Lq_value Option Set String
