(** Wall-clock phase profiling.

    The cost-breakdown figures of the paper (Figs. 8, 10, 12) decompose a
    hybrid run into iterate / apply-predicates / data-staging / native-op /
    return-result phases. Engines accumulate those phases here. Phase names
    repeat freely; times with the same name add up. *)

type t

val create : unit -> t
val now_ms : unit -> float
(** Monotonic clock (CLOCK_MONOTONIC) in milliseconds. The origin is
    arbitrary — only differences are meaningful — but successive samples
    never decrease, even across wall-clock adjustments. *)

val add : t -> string -> float -> unit
(** Adds [ms] to a named phase. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk, charging its duration to the phase. *)

val phases : t -> (string * float) list
(** Accumulated (name, milliseconds), in first-use order. *)

val total_ms : t -> float

val merge : t -> into:t -> unit
(** Adds every phase of the first profile into [into]. The service uses
    this to charge a request's profile from a per-attempt scratch
    profile only when that attempt completes. *)

val reset : t -> unit
val to_string : t -> string
