lib/engines/native/native_engine.mli: Lq_catalog
