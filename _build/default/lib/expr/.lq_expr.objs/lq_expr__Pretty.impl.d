lib/expr/pretty.ml: Ast Format List Lq_value String Value Vtype
