open Lq_value

let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Classic backtracking wildcard matcher; patterns are tiny. *)
  let rec go p i =
    if p = np then i = ns
    else
      match pattern.[p] with
      | '%' ->
        let rec try_from j = if go (p + 1) j then true else j < ns && try_from (j + 1) in
        try_from i
      | '_' -> i < ns && go (p + 1) (i + 1)
      | c -> i < ns && s.[i] = c && go (p + 1) (i + 1)
  in
  go 0 0

let cmp a b =
  match (a, b) with
  | Value.Int x, Value.Float y -> Float.compare (float_of_int x) y
  | Value.Float x, Value.Int y -> Float.compare x (float_of_int y)
  | _ -> Value.compare a b

let bad op args =
  invalid_arg
    (Printf.sprintf "Scalar: %s not defined on (%s)" op
       (String.concat ", " (List.map Value.to_string args)))

let unop (op : Ast.unop) v =
  match (op, v) with
  | Ast.Neg, Value.Int i -> Value.Int (-i)
  | Ast.Neg, Value.Float f -> Value.Float (-.f)
  | Ast.Not, Value.Bool b -> Value.Bool (not b)
  | (Ast.Neg | Ast.Not), _ -> bad "unop" [ v ]

let arith op a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> (
    match op with
    | Ast.Add -> Value.Int (x + y)
    | Ast.Sub -> Value.Int (x - y)
    | Ast.Mul -> Value.Int (x * y)
    | Ast.Div -> if y = 0 then bad "div-by-zero" [ a; b ] else Value.Int (x / y)
    | Ast.Mod -> if y = 0 then bad "mod-by-zero" [ a; b ] else Value.Int (x mod y)
    | _ -> assert false)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    let x = Value.to_float a and y = Value.to_float b in
    (match op with
    | Ast.Add -> Value.Float (x +. y)
    | Ast.Sub -> Value.Float (x -. y)
    | Ast.Mul -> Value.Float (x *. y)
    | Ast.Div -> Value.Float (x /. y)
    | Ast.Mod -> Value.Float (Float.rem x y)
    | _ -> assert false)
  | _ -> bad "arith" [ a; b ]

let binop (op : Ast.binop) a b =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> arith op a b
  | Ast.Eq -> Value.Bool (cmp a b = 0)
  | Ast.Ne -> Value.Bool (cmp a b <> 0)
  | Ast.Lt -> Value.Bool (cmp a b < 0)
  | Ast.Le -> Value.Bool (cmp a b <= 0)
  | Ast.Gt -> Value.Bool (cmp a b > 0)
  | Ast.Ge -> Value.Bool (cmp a b >= 0)
  | Ast.And -> (
    match (a, b) with
    | Value.Bool x, Value.Bool y -> Value.Bool (x && y)
    | _ -> bad "and" [ a; b ])
  | Ast.Or -> (
    match (a, b) with
    | Value.Bool x, Value.Bool y -> Value.Bool (x || y)
    | _ -> bad "or" [ a; b ])

let call (f : Ast.func) args =
  match (f, args) with
  | Ast.Starts_with, [ Value.Str s; Value.Str p ] ->
    Value.Bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | Ast.Ends_with, [ Value.Str s; Value.Str p ] ->
    let ns = String.length s and np = String.length p in
    Value.Bool (np <= ns && String.sub s (ns - np) np = p)
  | Ast.Contains, [ Value.Str s; Value.Str p ] ->
    Value.Bool (like_match ~pattern:("%" ^ p ^ "%") s)
  | Ast.Like, [ Value.Str s; Value.Str pattern ] -> Value.Bool (like_match ~pattern s)
  | Ast.Lower, [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
  | Ast.Upper, [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
  | Ast.Length, [ Value.Str s ] -> Value.Int (String.length s)
  | Ast.Abs, [ Value.Int i ] -> Value.Int (abs i)
  | Ast.Abs, [ Value.Float f ] -> Value.Float (Float.abs f)
  | Ast.Year, [ Value.Date d ] -> Value.Int (Date.year d)
  | Ast.Add_days, [ Value.Date d; Value.Int n ] -> Value.Date (Date.add_days d n)
  | ( ( Ast.Starts_with | Ast.Ends_with | Ast.Contains | Ast.Like | Ast.Lower
      | Ast.Upper | Ast.Length | Ast.Abs | Ast.Year | Ast.Add_days ),
      _ ) ->
    bad "call" args
