(** Single-assignment result cells ("futures").

    The service hands one back per admitted request: the worker Domain
    fulfils it exactly once, callers either block on {!await} (sync
    clients) or {!poll} it from their own loop (async clients). All
    operations are Domain-safe. *)

type 'a t

val create : unit -> 'a t

val fulfil : 'a t -> 'a -> bool
(** Resolves the future, waking every waiter. Returns [false] (and
    changes nothing) when it was already resolved — fulfilment is
    first-writer-wins. *)

val await : 'a t -> 'a
(** Blocks the calling Domain until the future is resolved. *)

val await_for : timeout_ms:float -> 'a t -> 'a option
(** Bounded wait; [None] on timeout. (The stdlib has no timed condition
    wait, so this polls at sub-millisecond granularity — use [await]
    when unbounded blocking is acceptable.) *)

val poll : 'a t -> 'a option
(** Non-blocking peek at the resolved value. *)

val is_resolved : 'a t -> bool
