lib/tpch/workloads.mli: Lq_expr Lq_value Value
