(** Plan-level codegen options, shared by every backend.

    Each flag corresponds to an optimization the paper discusses; switching
    one off reproduces the corresponding §2.3 inefficiency for the ablation
    microbenchmarks ([bench micro]). The flags take effect during lowering
    (see {!Lower}), so a toggle means the same thing in every engine that
    consumes the shared plan. *)

type t = {
  fuse_aggregates : bool;
      (** compute all of a group's aggregates in one pass over its elements
          (off: one pass per aggregate, like LINQ-to-objects) *)
  dedup_aggregates : bool;
      (** share structurally identical aggregates (off: recompute) *)
  fuse_topk : bool;
      (** merge [OrderBy]+[Take n] into a bounded heap (§2.3 "independent
          operators") *)
  hash_join : bool;
      (** hash equi-joins (off: nested loops, as in Steno / Murray et al.) *)
}

let default =
  { fuse_aggregates = true; dedup_aggregates = true; fuse_topk = true; hash_join = true }

let naive =
  {
    fuse_aggregates = false;
    dedup_aggregates = false;
    fuse_topk = false;
    hash_join = true;
  }

let to_string t =
  Printf.sprintf "fuse_agg=%b dedup_agg=%b topk=%b hash_join=%b" t.fuse_aggregates
    t.dedup_aggregates t.fuse_topk t.hash_join
