(* Cost records and the weighted score.

   One record per (query, engine) pair. The score is the classic
   estimated-cycle formula used by nim-lang/ci_bench and pyperformance:

     score = Ir + 10·(I1mr + D1mr + D1mw) + 100·(ILmr + DLmr + DLmw)

   i.e. every executed instruction costs 1, an L1 miss that hits LL
   costs 10, and a miss all the way to RAM costs 100. It is a pure
   function of deterministic counters, so the committed baseline is an
   exact integer, not a distribution. *)

module Json = Lq_trace.Json

type counts = {
  ir : int;  (* instructions executed (sim backend: modelled accesses) *)
  i1mr : int;
  ilmr : int;
  dr : int;
  d1mr : int;
  dlmr : int;
  dw : int;
  d1mw : int;
  dlmw : int;
}

let zero_counts =
  { ir = 0; i1mr = 0; ilmr = 0; dr = 0; d1mr = 0; dlmr = 0; dw = 0; d1mw = 0; dlmw = 0 }

let count_fields =
  [
    ("Ir", (fun c -> c.ir), fun c v -> { c with ir = v });
    ("I1mr", (fun c -> c.i1mr), fun c v -> { c with i1mr = v });
    ("ILmr", (fun c -> c.ilmr), fun c v -> { c with ilmr = v });
    ("Dr", (fun c -> c.dr), fun c v -> { c with dr = v });
    ("D1mr", (fun c -> c.d1mr), fun c v -> { c with d1mr = v });
    ("DLmr", (fun c -> c.dlmr), fun c v -> { c with dlmr = v });
    ("Dw", (fun c -> c.dw), fun c v -> { c with dw = v });
    ("D1mw", (fun c -> c.d1mw), fun c v -> { c with d1mw = v });
    ("DLmw", (fun c -> c.dlmw), fun c v -> { c with dlmw = v });
  ]

(* From a cachegrind events/summary association list; events the formula
   does not use are ignored, absent events count as zero. *)
let counts_of_events events =
  List.fold_left
    (fun acc (name, set) ->
      match List.assoc_opt name events with Some v -> set acc v | None -> acc)
    zero_counts
    (List.map (fun (n, _, s) -> (n, s)) count_fields)

let l1_weight = 10
let ll_weight = 100

let score c =
  c.ir + (l1_weight * (c.i1mr + c.d1mr + c.d1mw)) + (ll_weight * (c.ilmr + c.dlmr + c.dlmw))

type record = {
  query : string;
  engine : string;
  rows : int;  (* result cardinality: a cheap correctness cross-check *)
  counts : counts;
  record_score : int;
}

let make_record ~query ~engine ~rows counts =
  { query; engine; rows; counts; record_score = score counts }

type file = {
  version : int;
  suite : string;
  backend : string;  (* "sim" | "cachegrind" *)
  sf : float;
  seed : int;
  tool : string;  (* scoring-tool identification, e.g. valgrind version *)
  geometry_id : string;
  records : record list;
}

(* ------------------------------------------------------------------ *)
(* JSON (schema version 1) *)

let record_to_json r =
  Json.Obj
    [
      ("query", Json.Str r.query);
      ("engine", Json.Str r.engine);
      ("score", Json.Int r.record_score);
      ("rows", Json.Int r.rows);
      ( "counts",
        Json.Obj (List.map (fun (n, get, _) -> (n, Json.Int (get r.counts))) count_fields)
      );
    ]

(* One record per line, sorted by (query, engine): a baseline refresh
   diffs as one changed line per changed pair. *)
let to_json f =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  let header =
    [
      ("version", Json.Int f.version);
      ("suite", Json.Str f.suite);
      ("backend", Json.Str f.backend);
      ("sf", Json.Float f.sf);
      ("seed", Json.Int f.seed);
      ("tool", Json.Str f.tool);
      ("geometry", Json.Str f.geometry_id);
    ]
  in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %s,\n" (Json.to_string (Json.Str k)) (Json.to_string v)))
    header;
  Buffer.add_string buf "\"records\": [\n";
  let sorted =
    List.sort
      (fun a b ->
        match compare a.query b.query with 0 -> compare a.engine b.engine | c -> c)
      f.records
  in
  List.iteri
    (fun i r ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (Json.to_string (record_to_json r));
      if i < List.length sorted - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    sorted;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let json_str key j =
  match Option.bind (Json.member key j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S" key)

let json_int key j =
  match Option.bind (Json.member key j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-integer %S" key)

let ( let* ) = Result.bind

let record_of_json j =
  let* query = json_str "query" j in
  let* engine = json_str "engine" j in
  let* sc = json_int "score" j in
  let* rows = json_int "rows" j in
  match Json.member "counts" j with
  | None -> Error (Printf.sprintf "%s/%s: missing counts" query engine)
  | Some cj ->
    let* counts =
      List.fold_left
        (fun acc (name, _, set) ->
          let* c = acc in
          let* v = json_int name cj in
          Ok (set c v))
        (Ok zero_counts) count_fields
    in
    if score counts <> sc then
      Error
        (Printf.sprintf "%s/%s: stored score %d does not match counts (%d)" query
           engine sc (score counts))
    else Ok { query; engine; rows; counts; record_score = sc }

let of_json s =
  match Json.parse s with
  | Error msg -> Error ("BENCH json: " ^ msg)
  | Ok j -> (
    let* version = json_int "version" j in
    if version <> 1 then Error (Printf.sprintf "unsupported schema version %d" version)
    else
      let* suite = json_str "suite" j in
      let* backend = json_str "backend" j in
      let* seed = json_int "seed" j in
      let* tool = json_str "tool" j in
      let* geometry_id = json_str "geometry" j in
      let* sf =
        match Json.member "sf" j with
        | Some (Json.Float f) -> Ok f
        | Some (Json.Int i) -> Ok (float_of_int i)
        | _ -> Error "missing or non-number \"sf\""
      in
      match Option.bind (Json.member "records" j) Json.to_list with
      | None -> Error "missing \"records\" array"
      | Some items ->
        let* records =
          List.fold_left
            (fun acc item ->
              let* rs = acc in
              let* r = record_of_json item in
              Ok (r :: rs))
            (Ok []) items
        in
        Ok { version; suite; backend; sf; seed; tool; geometry_id; records = List.rev records })

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> of_json contents
  | exception Sys_error msg -> Error msg

let save path f = Out_channel.with_open_bin path (fun oc -> output_string oc (to_json f))
