test/test_storage.ml: Alcotest Array Bytes Colstore Dict Fbuf Fun Layout List Lq_expr Lq_storage Lq_testkit Lq_value Mapping Option Pagelist Printf QCheck2 Rowstore Schema String Value Vtype
