lib/value/vtype.ml: Format List String
