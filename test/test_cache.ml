(* Unit tests for the caching layer: the weighted LRU substrate, the
   bounded compiled-query cache (eviction order, cost-aware admission,
   exact counters), the doubly-bounded result cache with table
   invalidation, the counters registry, and the monotonic clock. *)

open Lq_value
open Lq_expr.Dsl
module Counters = Lq_metrics.Counters
module Lru = Lq_core.Lru
module Query_cache = Lq_core.Query_cache
module Result_cache = Lq_core.Result_cache
module Provider = Lq_core.Provider

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- the LRU substrate --- *)

let test_lru_order () =
  let l = Lru.create ~max_entries:3 () in
  let put k = ignore (Lru.add l ~key:k k) in
  put "a";
  put "b";
  put "c";
  check_int "full" 3 (Lru.length l);
  (* touching "a" promotes it; "b" becomes the victim *)
  check_bool "find promotes" true (Lru.find l "a" = Some "a");
  (match Lru.add l ~key:"d" "d" with
  | Some [ ("b", "b") ] -> ()
  | _ -> Alcotest.fail "expected exactly b to be evicted");
  check_bool "a survives" true (Lru.mem l "a");
  check_bool "b gone" false (Lru.mem l "b");
  check_bool "MRU first" true (List.map fst (Lru.to_alist l) = [ "d"; "a"; "c" ])

let test_lru_peek_does_not_promote () =
  let l = Lru.create ~max_entries:2 () in
  ignore (Lru.add l ~key:"a" 1);
  ignore (Lru.add l ~key:"b" 2);
  check_bool "peek sees a" true (Lru.peek l "a" = Some 1);
  (* "a" is still LRU despite the peek *)
  check_bool "a is victim" true (fst (Option.get (Lru.peek_lru l)) = "a");
  ignore (Lru.add l ~key:"c" 3);
  check_bool "a evicted" false (Lru.mem l "a")

let test_lru_weight_bound () =
  let l = Lru.create ~max_weight:10 () in
  check_bool "admitted" true (Lru.add l ~key:"a" ~weight:4 "a" = Some []);
  ignore (Lru.add l ~key:"b" ~weight:4 "b");
  check_int "weight tracked" 8 (Lru.total_weight l);
  (* pushing past the weight budget evicts LRU entries until it fits *)
  (match Lru.add l ~key:"c" ~weight:6 "c" with
  | Some [ ("a", _) ] -> ()
  | _ -> Alcotest.fail "expected a evicted by weight pressure");
  check_int "within budget" 10 (Lru.total_weight l);
  (* an entry that alone exceeds the budget is refused, cache untouched *)
  check_bool "oversized refused" true (Lru.add l ~key:"huge" ~weight:11 "x" = None);
  check_int "untouched" 2 (Lru.length l)

let test_lru_disabled_and_replace () =
  let off = Lru.create ~max_entries:0 () in
  check_bool "disabled admits nothing" true (Lru.add off ~key:"a" 1 = None);
  check_bool "disabled finds nothing" true (Lru.find off "a" = None);
  let l = Lru.create ~max_entries:4 ~max_weight:100 () in
  ignore (Lru.add l ~key:"k" ~weight:10 1);
  ignore (Lru.add l ~key:"k" ~weight:3 2);
  check_int "replace keeps one entry" 1 (Lru.length l);
  check_int "replace updates weight" 3 (Lru.total_weight l);
  check_bool "replace updates value" true (Lru.find l "k" = Some 2);
  check_bool "remove returns value" true (Lru.remove l "k" = Some 2);
  check_int "empty" 0 (Lru.length l);
  check_int "no weight" 0 (Lru.total_weight l)

let test_lru_drop_where () =
  let l = Lru.create () in
  List.iter (fun k -> ignore (Lru.add l ~key:k (String.length k))) [ "x"; "yy"; "zzz"; "w" ];
  check_int "two dropped" 2 (Lru.drop_where l (fun _ n -> n = 1));
  check_bool "others kept" true (Lru.mem l "yy" && Lru.mem l "zzz")

(* --- the compiled-query cache --- *)

let fake_prepared ?(cost = 1.0) tag =
  {
    Lq_catalog.Engine_intf.execute =
      (fun ?profile ~params () ->
        ignore profile;
        ignore params;
        [ Value.Str tag ]);
    codegen_ms = cost;
    source = None;
  }

let compile_counting calls ?(cost = 1.0) tag () =
  incr calls;
  fake_prepared ~cost tag

let test_query_cache_eviction_and_stats () =
  let qc = Query_cache.create ~max_entries:2 () in
  let calls = ref 0 in
  let touch shape =
    ignore (Query_cache.find_or_compile qc ~engine:"e" ~shape ~compile:(compile_counting calls shape) ())
  in
  touch "s1";
  touch "s2";
  touch "s1";
  (* s2 is now LRU; s3 must evict it *)
  touch "s3";
  touch "s2";
  let stats = Query_cache.stats qc in
  check_int "compiles" 4 !calls;
  check_int "hits" 1 stats.Query_cache.hits;
  check_int "misses" 4 stats.Query_cache.misses;
  check_int "entries bounded" 2 stats.Query_cache.entries;
  check_int "evictions" 2 stats.Query_cache.evictions;
  check_int "nothing rejected" 0 stats.Query_cache.rejected;
  check_bool "compile time accumulated" true (stats.Query_cache.compile_ms = 4.0);
  check_bool "conservation" true
    (stats.Query_cache.hits + stats.Query_cache.misses = 5)

let test_query_cache_per_engine_counters () =
  let qc = Query_cache.create () in
  let calls = ref 0 in
  let touch engine shape cost =
    ignore
      (Query_cache.find_or_compile qc ~engine ~shape
         ~compile:(compile_counting calls ~cost shape) ())
  in
  touch "interp" "s" 0.5;
  touch "interp" "s" 0.5;
  touch "native" "s" 40.0;
  let c = Query_cache.counters qc in
  check_int "interp hits" 1 (Counters.count c "hits/interp");
  check_int "interp misses" 1 (Counters.count c "misses/interp");
  check_int "native misses" 1 (Counters.count c "misses/native");
  check_bool "native compile time" true (Counters.value c "compile_ms/native" = 40.0);
  check_bool "both engines listed" true (Query_cache.engines qc = [ "interp"; "native" ]);
  Query_cache.clear qc;
  check_int "clear resets counters" 0 (Counters.count c "hits/interp");
  check_int "clear drops plans" 0 (Query_cache.stats qc).Query_cache.entries

let test_query_cache_cost_aware_admission () =
  let qc = Query_cache.create ~max_entries:1 ~admission:(Query_cache.Cost_aware 4.0) () in
  let calls = ref 0 in
  let touch shape cost =
    ignore
      (Query_cache.find_or_compile qc ~engine:"e" ~shape
         ~compile:(compile_counting calls ~cost shape) ())
  in
  touch "expensive" 100.0;
  (* a much cheaper plan must not displace the expensive one... *)
  touch "cheap" 1.0;
  let stats = Query_cache.stats qc in
  check_int "cheap rejected" 1 stats.Query_cache.rejected;
  check_int "no eviction" 0 stats.Query_cache.evictions;
  touch "expensive" 100.0;
  check_int "expensive still cached" 1 (Query_cache.stats qc).Query_cache.hits;
  (* ...but a comparably expensive plan displaces it normally *)
  touch "peer" 50.0;
  let stats = Query_cache.stats qc in
  check_int "peer admitted" 1 stats.Query_cache.evictions;
  touch "peer" 50.0;
  check_int "peer cached" 2 (Query_cache.stats qc).Query_cache.hits

(* --- the result cache --- *)

let rows n = List.init n (fun i -> Value.Int i)

let test_result_cache_bounds () =
  let rc = Result_cache.create ~max_entries:10 ~max_rows:100 () in
  Result_cache.store rc "a" ~tables:[ "t1" ] (rows 60);
  Result_cache.store rc "b" ~tables:[ "t2" ] (rows 30);
  let stats = Result_cache.stats rc in
  check_int "rows accounted" 90 stats.Result_cache.cached_rows;
  (* 50 more rows exceed the budget: LRU entry "a" must go *)
  Result_cache.store rc "c" ~tables:[ "t1"; "t2" ] (rows 50);
  let stats = Result_cache.stats rc in
  check_int "within budget" 80 stats.Result_cache.cached_rows;
  check_int "one eviction" 1 stats.Result_cache.evictions;
  check_bool "a evicted" true (Result_cache.find rc "a" = None);
  check_bool "b kept" true (Result_cache.find rc "b" <> None);
  (* an oversized result is never admitted *)
  Result_cache.store rc "huge" (rows 101);
  check_int "oversized not admitted" 2 (Result_cache.stats rc).Result_cache.entries

let test_result_cache_invalidation_scoped () =
  let rc = Result_cache.create () in
  Result_cache.store rc "a" ~tables:[ "sales" ] (rows 5);
  Result_cache.store rc "b" ~tables:[ "shops" ] (rows 5);
  Result_cache.store rc "c" ~tables:[ "sales"; "shops" ] (rows 5);
  Result_cache.invalidate rc ~table:"sales";
  let stats = Result_cache.stats rc in
  check_int "only sales-dependent entries dropped" 1 stats.Result_cache.entries;
  check_int "two invalidations" 2 stats.Result_cache.invalidations;
  check_bool "shops-only entry survives" true (Result_cache.find rc "b" <> None);
  Result_cache.invalidate rc ~table:"never_heard_of_it";
  check_int "unknown table is a no-op" 2
    (Result_cache.stats rc).Result_cache.invalidations

let test_result_cache_exact_counters () =
  let rc = Result_cache.create ~max_entries:2 () in
  ignore (Result_cache.find rc "a");
  Result_cache.store rc "a" (rows 3);
  ignore (Result_cache.find rc "a");
  ignore (Result_cache.find rc "a");
  let stats = Result_cache.stats rc in
  check_int "hits" 2 stats.Result_cache.hits;
  check_int "misses" 1 stats.Result_cache.misses;
  check_int "entries" 1 stats.Result_cache.entries;
  check_int "rows" 3 stats.Result_cache.cached_rows;
  Result_cache.clear rc;
  let stats = Result_cache.stats rc in
  check_int "cleared entries" 0 stats.Result_cache.entries;
  check_int "cleared hits" 0 stats.Result_cache.hits

(* --- catalog-driven invalidation through the provider --- *)

let test_catalog_invalidation_hook () =
  let schema = Schema.make [ ("id", Vtype.Int) ] in
  let mk n = List.init n (fun i -> Schema.row schema [ Value.Int i ]) in
  let cat = Lq_catalog.Catalog.create () in
  Lq_catalog.Catalog.add cat ~name:"t" ~schema (mk 4);
  Lq_catalog.Catalog.add cat ~name:"u" ~schema (mk 2);
  let prov = Provider.create ~recycle_results:true cat in
  let engine = Lq_core.Engines.linq_to_objects in
  let q_t = source "t" |> where "s" (v "s" $. "id" >=: int 0) in
  let q_u = source "u" |> where "s" (v "s" $. "id" >=: int 0) in
  check_int "t cold" 4 (List.length (Provider.run prov ~engine q_t));
  check_int "u cold" 2 (List.length (Provider.run prov ~engine q_u));
  (* reload table t with more rows: its recycled result must be dropped,
     u's must survive *)
  Lq_catalog.Catalog.replace cat ~name:"t" ~schema (mk 7);
  let stats = Option.get (Provider.result_cache_stats prov) in
  check_int "t's entry invalidated" 1 stats.Result_cache.entries;
  check_int "invalidation counted" 1 stats.Result_cache.invalidations;
  check_int "t reflects the reload" 7 (List.length (Provider.run prov ~engine q_t));
  check_int "u untouched" 2 (List.length (Provider.run prov ~engine q_u));
  let stats = Option.get (Provider.result_cache_stats prov) in
  check_int "u's entry survived (hit)" 1 stats.Result_cache.hits

(* A table read *only* through a nested sub-query must still invalidate
   the recycled result when it is reloaded (the access model used to stop
   at [Ast.Subquery], leaving such tables invisible). *)
let test_subquery_table_invalidation () =
  let schema_t = Schema.make [ ("id", Vtype.Int) ] in
  let schema_u = Schema.make [ ("uid", Vtype.Int) ] in
  let mk schema n = List.init n (fun i -> Schema.row schema [ Value.Int i ]) in
  let cat = Lq_catalog.Catalog.create () in
  Lq_catalog.Catalog.add cat ~name:"t" ~schema:schema_t (mk schema_t 4);
  Lq_catalog.Catalog.add cat ~name:"u" ~schema:schema_u (mk schema_u 2);
  let prov = Provider.create ~recycle_results:true cat in
  let engine = Lq_core.Engines.linq_to_objects in
  (* t rows pass while id < count(u): u is touched only inside the
     sub-query *)
  let q =
    source "t"
    |> where "s"
         (v "s" $. "id"
         <: count (subquery (source "u" |> where "x" (v "x" $. "uid" >=: int 0))))
  in
  let names = Lq_catalog.Access_model.used_member_names q in
  check_bool "sub-query field visible to the access model" true
    (Hashtbl.mem names "uid");
  check_int "cold" 2 (List.length (Provider.run prov ~engine q));
  check_int "warm" 2 (List.length (Provider.run prov ~engine q));
  let stats = Option.get (Provider.result_cache_stats prov) in
  check_int "one hit before reload" 1 stats.Result_cache.hits;
  (* grow u: the cached result depends on it only through the sub-query *)
  Lq_catalog.Catalog.replace cat ~name:"u" ~schema:schema_u (mk schema_u 4);
  let stats = Option.get (Provider.result_cache_stats prov) in
  check_int "stale entry dropped" 0 stats.Result_cache.entries;
  check_int "invalidation counted" 1 stats.Result_cache.invalidations;
  check_int "reload visible through the sub-query" 4
    (List.length (Provider.run prov ~engine q))

(* --- counters registry --- *)

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.incr ~by:4 c "a";
  Counters.add_ms c "phase_ms" 1.25;
  check_int "sum" 5 (Counters.count c "a");
  check_bool "ms" true (Counters.value c "phase_ms" = 1.25);
  check_int "absent is zero" 0 (Counters.count c "nope");
  check_bool "sorted snapshot" true
    (List.map fst (Counters.to_alist c) = [ "a"; "phase_ms" ]);
  check_bool "renders both" true
    (String.length (Counters.to_string c) > 0);
  Counters.reset c;
  check_int "reset" 0 (Counters.count c "a")

(* --- monotonic clock --- *)

let test_now_ms_monotonic () =
  let prev = ref (Lq_metrics.Profile.now_ms ()) in
  for _ = 1 to 10_000 do
    let t = Lq_metrics.Profile.now_ms () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  (* and it actually advances *)
  let t0 = Lq_metrics.Profile.now_ms () in
  Unix.sleepf 0.002;
  check_bool "advances" true (Lq_metrics.Profile.now_ms () -. t0 >= 1.0)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "recency order" `Quick test_lru_order;
          Alcotest.test_case "peek does not promote" `Quick test_lru_peek_does_not_promote;
          Alcotest.test_case "weight bound" `Quick test_lru_weight_bound;
          Alcotest.test_case "disabled + replace" `Quick test_lru_disabled_and_replace;
          Alcotest.test_case "drop_where" `Quick test_lru_drop_where;
        ] );
      ( "query cache",
        [
          Alcotest.test_case "eviction + exact stats" `Quick
            test_query_cache_eviction_and_stats;
          Alcotest.test_case "per-engine counters" `Quick
            test_query_cache_per_engine_counters;
          Alcotest.test_case "cost-aware admission" `Quick
            test_query_cache_cost_aware_admission;
        ] );
      ( "result cache",
        [
          Alcotest.test_case "entry + row bounds" `Quick test_result_cache_bounds;
          Alcotest.test_case "scoped invalidation" `Quick
            test_result_cache_invalidation_scoped;
          Alcotest.test_case "exact counters" `Quick test_result_cache_exact_counters;
        ] );
      ( "invalidation hooks",
        [
          Alcotest.test_case "catalog reload" `Quick test_catalog_invalidation_hook;
          Alcotest.test_case "sub-query-only table reload" `Quick
            test_subquery_table_invalidation;
        ] );
      ("counters", [ Alcotest.test_case "registry" `Quick test_counters ]);
      ("clock", [ Alcotest.test_case "monotonic now_ms" `Quick test_now_ms_monotonic ]);
    ]
