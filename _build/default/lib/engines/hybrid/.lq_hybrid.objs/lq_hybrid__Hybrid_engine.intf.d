lib/engines/hybrid/hybrid_engine.mli: Lq_catalog
