(** dbgen-compatible [.tbl] file interchange.

    The reference TPC-H generator emits pipe-delimited [table.tbl] files;
    this module writes the generated relations in that format and loads
    such files back into a catalog, so datasets can be produced once and
    reused (or swapped with files from the real dbgen).

    Column encoding per type: integers and day-precision dates as printed
    by dbgen ([YYYY-MM-DD]), floats with two decimals (the DECIMAL(15,2)
    money columns), booleans as [0]/[1]. *)

open Lq_value

val write_table : dir:string -> name:string -> Schema.t -> Value.t list -> unit
(** Writes [dir/name.tbl]. @raise Sys_error on I/O failure,
    [Invalid_argument] on nested schemas. *)

val read_table : dir:string -> name:string -> Schema.t -> Value.t list
(** Parses [dir/name.tbl] against the schema.
    @raise Failure on malformed lines. *)

val dump : dir:string -> Lq_catalog.Catalog.t -> unit
(** Writes every registered (flat) table. *)

val load_dir :
  dir:string -> (string * Schema.t) list -> Lq_catalog.Catalog.t
(** Builds a catalog from [.tbl] files; the list gives table names and
    schemas (e.g. {!Schemas.all}). *)

val row_to_line : Schema.t -> Value.t -> string
val line_to_row : Schema.t -> string -> Value.t
