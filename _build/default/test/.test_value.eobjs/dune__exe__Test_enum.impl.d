test/test_enum.ml: Alcotest Fun Int List Lq_enum Lq_testkit QCheck2
