let check name = function
  | [] -> invalid_arg (Printf.sprintf "Stats.%s: empty list" name)
  | xs -> xs

let median xs =
  let xs = check "median" xs in
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  if n land 1 = 1 then List.nth sorted (n / 2)
  else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let mean xs =
  let xs = check "mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum xs = List.fold_left Float.min Float.max_float (check "minimum" xs)
