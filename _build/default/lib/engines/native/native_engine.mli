(** The pure-C code-generation backend (§5), as an engine.

    Requires sources registered with flat schemas (the "array of structs"
    precondition); processes everything in tight loops over unboxed rows
    with no data staging — the fastest strategy in every experiment of the
    paper. Refuses queries outside the native subset (correlated
    sub-queries, non-flat intermediates), like Hekaton refusing TPC-H Q2. *)

val engine : Lq_catalog.Engine_intf.t

val engine_dbms : Lq_catalog.Engine_intf.t
(** The same backend presented as the "SQL Server native / Hekaton"
    stand-in of Table 1 (identical execution; separate name for reports). *)
