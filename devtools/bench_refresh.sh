#!/bin/sh
# Refresh the committed perf baseline (BENCH_tpch.json).
#
# Run this ONLY when a score change is an accepted cost (or a win you
# want to lock in), then commit the JSON diff alongside the change that
# caused it — the one-record-per-line layout makes the review diff one
# line per changed (query, engine) pair.
#
#   sh devtools/bench_refresh.sh                 # sim backend (default)
#   sh devtools/bench_refresh.sh --backend cachegrind   # needs valgrind
#
# Extra flags are passed through to bench/perf_ci.exe (--sf, --seed,
# --query, --engine, ...).

set -eu

cd "$(dirname "$0")/.."

dune build bench/perf_ci.exe

echo "== scoring suite =="
_build/default/bench/perf_ci.exe --out BENCH_tpch.json "$@"

echo ""
echo "== diff vs committed baseline =="
git --no-pager diff --stat -- BENCH_tpch.json || true
echo "review with: git diff BENCH_tpch.json ; then commit the refresh"
