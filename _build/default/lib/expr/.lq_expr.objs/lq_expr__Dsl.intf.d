lib/expr/dsl.mli: Ast Lq_value Value
