test/test_extensions.ml: Alcotest List Lq_catalog Lq_core Lq_expr Lq_parallel Lq_testkit Lq_tpch Lq_value Option Value
