lib/core/optimizer.ml: Float List Lq_expr Lq_value Option
