(** Small order statistics over repeated measurements.

    The wall-clock bench harness and the perf-CI scorer both reduce a
    handful of repeated runs to one number; these helpers define that
    reduction precisely (the previous ad-hoc median silently returned the
    upper-middle element for even-length lists). *)

val median : float list -> float
(** Middle element for odd lengths, mean of the two middle elements for
    even lengths. @raise Invalid_argument on the empty list. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val minimum : float list -> float
(** Smallest element. @raise Invalid_argument on the empty list. *)
