(** The common engine contract.

    Every execution strategy — the LINQ-to-objects baseline, the three
    code-generating backends of §§4–6 and the two DBMS stand-ins — is an
    {!t}: given a catalog and a canonical query it *prepares* (generates
    and "compiles" a plan, the analogue of emitting and compiling C#/C
    source), and the prepared query executes any number of times under
    different parameter bindings (the cache-reuse story of §3). *)

open Lq_value

exception Unsupported of string
(** An engine may refuse a query it cannot compile — mirroring, e.g.,
    Hekaton rejecting TPC-H Q2's nested sub-query (§7.5). *)

type prepared = {
  execute :
    ?profile:Lq_metrics.Profile.t ->
    params:(string * Value.t) list ->
    unit ->
    Value.t list;
      (** Runs the compiled plan. [profile] collects the per-phase cost
          breakdown (Figs. 8/10/12). *)
  codegen_ms : float;  (** plan generation ("code generation") time *)
  source : string option;
      (** the generated C#-like / C-like source listing, when the backend
          emits one *)
}

type caps = {
  needs_flat_sources : bool;
      (** sources must be flat arrays of scalar-typed structs (§5) *)
  supports_correlated : bool;
      (** can evaluate correlated sub-queries (only the interpreted
          baselines can; Hekaton-style native rejects them, §7.5) *)
  supports_subqueries : bool;  (** can evaluate (uncorrelated) sub-plans *)
  supports_group_no_selector : bool;
      (** can materialize group values themselves (key + element list) *)
  supports_nested_paths : bool;
      (** tolerates member chains deeper than one field *)
  supports_interning : bool;
      (** tolerates string-producing calls ([Lower]/[Upper]) that would
          require cross-Domain interning *)
  max_sources : int option;  (** bound on distinct scans, when limited *)
}
(** What an engine's plan builder can compile, declared up front so the
    provider and the service can route around an engine *before* paying
    code generation (the capability check of the shared plan layer). The
    declaration is conservative: a capability miss is a guaranteed
    [Unsupported]; passing the check does not promise success. *)

val caps_any : caps
(** The fully permissive capability set (the interpreted baseline). *)

type t = {
  name : string;
  describe : string;
  caps : caps;
  prepare : ?instr:Instr.t -> Catalog.t -> Lq_expr.Ast.query -> prepared;
}

val unsupported : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raises {!Unsupported} with a formatted message. *)

val codegen_failed : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raises a typed {!Lq_fault.Codegen_error} fault: plan building hit a
    condition that is a bug or an unforeseen shape, not a declared
    capability miss. *)

val execution_failed : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raises a typed {!Lq_fault.Internal} fault from a prepared plan's
    execution path. *)

(** Loading this module also registers an {!Lq_fault} classifier mapping
    {!Unsupported} to the [Unsupported] fault kind, so every layer above
    sees engine refusals typed. *)
