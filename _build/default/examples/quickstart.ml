(* Quickstart: the §2 example — query an in-memory collection through the
   expression-tree DSL and run it on every execution strategy.

     dune exec examples/quickstart.exe *)

open Lq_value
open Lq_expr.Dsl

let () =
  (* 1. Application data: a plain in-memory collection. *)
  let schema =
    Schema.make [ ("Name", Vtype.String); ("Population", Vtype.Int) ]
  in
  let cities =
    List.map
      (fun (n, p) -> Schema.row schema [ Value.Str n; Value.Int p ])
      [
        ("London", 8_982_000);
        ("Paris", 2_161_000);
        ("London", 43_000);  (* London, Ontario *)
        ("Rome", 2_873_000);
        ("Berlin", 3_645_000);
      ]
  in

  (* 2. Register it with the catalog (the QList<T> wrapping of §3). *)
  let catalog = Lq_catalog.Catalog.create () in
  Lq_catalog.Catalog.add catalog ~name:"cities" ~schema cities;
  let provider = Lq_core.Provider.create catalog in

  (* 3. The §2 query:
         from s in cities where s.Name == "London" select s.Population *)
  let query =
    source "cities"
    |> where "s" (v "s" $. "Name" =: p "name")
    |> select "s" (v "s" $. "Population")
  in
  let params = [ ("name", Value.Str "London") ] in

  (* 4. Run it on every engine; all agree. *)
  print_endline "query:";
  Printf.printf "  %s\n\n" (Lq_expr.Pretty.query_to_string query);
  List.iter
    (fun (engine : Lq_catalog.Engine_intf.t) ->
      match Lq_core.Provider.run provider ~engine ~params query with
      | rows ->
        Printf.printf "%-28s -> [%s]\n" engine.name
          (String.concat "; " (List.map Value.to_string rows))
      | exception Lq_catalog.Engine_intf.Unsupported msg ->
        Printf.printf "%-28s -> unsupported (%s)\n" engine.name msg)
    Lq_core.Engines.all;

  (* 5. Inspect the generated code the C backend would emit (§5.1). *)
  print_endline "\ngenerated C for this query:";
  let prepared, _ =
    Lq_core.Provider.prepare_only provider ~engine:Lq_core.Engines.compiled_c query
  in
  (match prepared.Lq_catalog.Engine_intf.source with
  | Some src -> print_endline src
  | None -> print_endline "  (no source)");

  (* 6. Run the same pattern with another parameter: the compiled plan is
        reused from the query cache (§3). *)
  ignore
    (Lq_core.Provider.run provider ~engine:Lq_core.Engines.compiled_c
       ~params:[ ("name", Value.Str "Rome") ]
       query);
  let stats = Lq_core.Provider.cache_stats provider in
  Printf.printf "query cache: %d compilations, %d hits\n"
    stats.Lq_core.Query_cache.misses stats.Lq_core.Query_cache.hits
