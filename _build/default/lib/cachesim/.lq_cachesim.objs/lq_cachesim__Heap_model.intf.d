lib/cachesim/heap_model.mli:
