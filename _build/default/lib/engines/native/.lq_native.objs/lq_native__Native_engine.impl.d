lib/engines/native/native_engine.ml: Codegen_c Lq_catalog Lq_expr Lq_metrics Nplan Option
