lib/engines/compiled/options.ml: Printf
