lib/engines/compiled/cexpr.mli: Lq_expr Lq_value Value Vtype
