open Lq_value

exception Unsupported of string

type prepared = {
  execute :
    ?profile:Lq_metrics.Profile.t ->
    params:(string * Value.t) list ->
    unit ->
    Value.t list;
      (** Must be safe to call from multiple Domains: the compiled-query
          cache hands one prepared plan to every concurrent caller. Engines
          whose plans close over mutable scratch state serialize executions
          with a per-plan lock (compiled plan, nplan, hybrid). *)
  codegen_ms : float;
  source : string option;
}

type caps = {
  needs_flat_sources : bool;
  supports_correlated : bool;
  supports_subqueries : bool;
  supports_group_no_selector : bool;
  supports_nested_paths : bool;
  supports_interning : bool;
  max_sources : int option;
}

let caps_any =
  {
    needs_flat_sources = false;
    supports_correlated = true;
    supports_subqueries = true;
    supports_group_no_selector = true;
    supports_nested_paths = true;
    supports_interning = true;
    max_sources = None;
  }

type t = {
  name : string;
  describe : string;
  caps : caps;
  prepare : ?instr:Instr.t -> Catalog.t -> Lq_expr.Ast.query -> prepared;
}

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt
