type t = { mutable allocated : int }

let create () = { allocated = 0 }
let header_bytes = 16
let slot_bytes = 8

let alloc_object t ~nfields =
  t.allocated <- t.allocated + 1;
  Lq_storage.Addr_space.alloc (header_bytes + (nfields * slot_bytes))

let alloc_rows t ~nrows ~nfields = Array.init nrows (fun _ -> alloc_object t ~nfields)
let field_addr ~base ~slot = base + header_bytes + (slot * slot_bytes)
let objects_allocated t = t.allocated
