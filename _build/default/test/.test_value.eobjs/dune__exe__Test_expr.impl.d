test/test_expr.ml: Alcotest Ast Date Eval Fold List Lq_expr Lq_testkit Lq_tpch Lq_value Paths Pretty Printf Scalar Schema Shape Sql Typecheck Value Vtype
