open Lq_value

let binop_symbol : Ast.binop -> string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let func_name : Ast.func -> string = function
  | Ast.Starts_with -> "StartsWith"
  | Ast.Ends_with -> "EndsWith"
  | Ast.Contains -> "Contains"
  | Ast.Like -> "Like"
  | Ast.Lower -> "Lower"
  | Ast.Upper -> "Upper"
  | Ast.Length -> "Length"
  | Ast.Abs -> "Abs"
  | Ast.Year -> "Year"
  | Ast.Add_days -> "AddDays"

let agg_name : Ast.agg -> string = function
  | Ast.Sum -> "Sum"
  | Ast.Count -> "Count"
  | Ast.Min -> "Min"
  | Ast.Max -> "Max"
  | Ast.Avg -> "Average"

let pp_const ~hide_consts fmt v =
  if hide_consts then
    let ty =
      match Value.type_of v with
      | Some ty -> Vtype.to_string ty
      | None -> "null"
    in
    Format.fprintf fmt "?:%s" ty
  else Value.pp fmt v

let rec pp_expr ~hide_consts fmt (e : Ast.expr) =
  let pe fmt e = pp_expr ~hide_consts fmt e in
  match e with
  | Ast.Const v -> pp_const ~hide_consts fmt v
  | Ast.Param p -> Format.fprintf fmt "@%s" p
  | Ast.Var v -> Format.pp_print_string fmt v
  | Ast.Member (e, name) -> Format.fprintf fmt "%a.%s" pe e name
  | Ast.Unop (Ast.Neg, e) -> Format.fprintf fmt "-(%a)" pe e
  | Ast.Unop (Ast.Not, e) -> Format.fprintf fmt "!(%a)" pe e
  | Ast.Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pe a (binop_symbol op) pe b
  | Ast.If (c, t, e) -> Format.fprintf fmt "(%a ? %a : %a)" pe c pe t pe e
  | Ast.Call (f, args) ->
    Format.fprintf fmt "%s(%a)" (func_name f)
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pe)
      args
  | Ast.Agg (kind, src, sel) ->
    Format.fprintf fmt "%a.%s(%a)" pe src (agg_name kind)
      (Format.pp_print_option (pp_lambda ~hide_consts))
      sel
  | Ast.Subquery q -> Format.fprintf fmt "(%a)" (pp_query ~hide_consts) q
  | Ast.Record_of fields ->
    Format.fprintf fmt "new {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (n, e) -> Format.fprintf fmt "%s = %a" n pe e))
      fields

and pp_lambda ~hide_consts fmt (l : Ast.lambda) =
  let params =
    match l.params with
    | [ p ] -> p
    | ps -> "(" ^ String.concat ", " ps ^ ")"
  in
  Format.fprintf fmt "%s => %a" params (pp_expr ~hide_consts) l.body

and pp_query ~hide_consts fmt (q : Ast.query) =
  let pq fmt q = pp_query ~hide_consts fmt q in
  let pl fmt l = pp_lambda ~hide_consts fmt l in
  match q with
  | Ast.Source name -> Format.pp_print_string fmt name
  | Ast.Where (src, pred) -> Format.fprintf fmt "%a@,.Where(%a)" pq src pl pred
  | Ast.Select (src, sel) -> Format.fprintf fmt "%a@,.Select(%a)" pq src pl sel
  | Ast.Join { left; right; left_key; right_key; result } ->
    Format.fprintf fmt "%a@,.Join(%a,@ %a,@ %a,@ %a)" pq left pq right pl
      left_key pl right_key pl result
  | Ast.Group_by { group_source; key; group_result } -> (
    match group_result with
    | None -> Format.fprintf fmt "%a@,.GroupBy(%a)" pq group_source pl key
    | Some r ->
      Format.fprintf fmt "%a@,.GroupBy(%a,@ %a)" pq group_source pl key pl r)
  | Ast.Order_by (src, keys) ->
    Format.fprintf fmt "%a" pq src;
    List.iteri
      (fun i (k : Ast.sort_key) ->
        let name =
          match (i, k.dir) with
          | 0, Ast.Asc -> "OrderBy"
          | 0, Ast.Desc -> "OrderByDescending"
          | _, Ast.Asc -> "ThenBy"
          | _, Ast.Desc -> "ThenByDescending"
        in
        Format.fprintf fmt "@,.%s(%a)" name pl k.by)
      keys
  | Ast.Take (src, n) ->
    Format.fprintf fmt "%a@,.Take(%a)" pq src (pp_expr ~hide_consts) n
  | Ast.Skip (src, n) ->
    Format.fprintf fmt "%a@,.Skip(%a)" pq src (pp_expr ~hide_consts) n
  | Ast.Distinct src -> Format.fprintf fmt "%a@,.Distinct()" pq src

let pp_expr ?(hide_consts = false) fmt e = pp_expr ~hide_consts fmt e
let pp_lambda ?(hide_consts = false) fmt l = pp_lambda ~hide_consts fmt l

let pp_query ?(hide_consts = false) fmt q =
  Format.fprintf fmt "@[<v 2>%a@]" (pp_query ~hide_consts) q

let expr_to_string ?hide_consts e = Format.asprintf "%a" (pp_expr ?hide_consts) e
let query_to_string ?hide_consts q = Format.asprintf "%a" (pp_query ?hide_consts) q
