open Lq_value
open Lq_expr.Dsl

let filtered_lineitem =
  source "lineitem" |> where "lf" (v "lf" $. "l_shipdate" <=: p "cutoff")

let aggregation = Queries.q1_grouping filtered_lineitem

let aggregation_n n =
  if n < 1 then invalid_arg "Workloads.aggregation_n";
  let one = float 1.0 in
  (* n distinct Sums over the same staged columns: scaled versions of the
     discounted price. *)
  let agg i =
    ( Printf.sprintf "sum_%d" i,
      sum (v "g") "x"
        ((v "x" $. "l_extendedprice")
        *: (one -: (v "x" $. "l_discount"))
        *: float (1.0 +. (float_of_int i /. 100.0))) )
  in
  filtered_lineitem
  |> group_by
       ~key:("l", v "l" $. "l_returnflag")
       ~result:
         ("g", record (("flag", v "g" $. "Key") :: List.init n agg))

let sorting =
  filtered_lineitem |> order_by [ ("s", v "s" $. "l_extendedprice", asc) ]

let join =
  Queries.q3_join
    ~customer:
      (source "customer" |> where "cf" (v "cf" $. "c_mktsegment" =: str "BUILDING"))
    ~orders:(source "orders" |> where "of" (v "of" $. "o_orderdate" <=: p "cutoff_o"))
    ~lineitem:filtered_lineitem

let params ~sel =
  [
    ("cutoff", Value.Date (Dbgen.shipdate_cutoff sel));
    ("cutoff_o", Value.Date (Dbgen.orderdate_cutoff sel));
  ]

(* --- Service-layer traffic mix ------------------------------------- *)

let selectivity_cycle = [| 0.1; 0.25; 0.5; 0.75; 1.0 |]

let cycling cycle make i = make cycle.(i mod Array.length cycle)

let override key value params =
  (key, value) :: List.remove_assoc key params

let service_mix =
  [
    ("agg", aggregation, cycling selectivity_cycle (fun sel -> params ~sel));
    ("sort", sorting, cycling selectivity_cycle (fun sel -> params ~sel));
    ("join", join, cycling selectivity_cycle (fun sel -> params ~sel));
    ( "q1",
      Queries.q1,
      cycling [| 60; 90; 120 |] (fun delta ->
          override "q1_delta" (Value.Int delta) Queries.default_params) );
    ( "q6",
      Queries.q6,
      cycling [| 0.05; 0.06; 0.07 |] (fun d ->
          override "q6_discount" (Value.Float d) Queries.extended_params) );
    ( "q14",
      Queries.q14,
      cycling [| (1995, 9); (1995, 3); (1994, 6) |] (fun (y, m) ->
          override "q14_date" (Value.Date (Date.of_ymd y m 1)) Queries.extended_params)
    );
  ]
