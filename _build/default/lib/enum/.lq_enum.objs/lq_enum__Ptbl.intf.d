lib/enum/ptbl.mli:
