(** The LINQ-to-objects baseline engine (§2).

    Executes the expression tree the way the default .NET implementation
    would, faithfully keeping every inefficiency §2.3 catalogues:

    - one {!Lq_enum.Enumerable} operator per query operator, chained and
      pulled element-at-a-time (two indirect calls per element per
      operator);
    - lambdas interpreted over boxed values on every element (no inlining,
      members located by name at run time);
    - grouped aggregates computed by re-iterating each group's element
      list once per aggregate in the result selector — including duplicate
      aggregates;
    - nested sub-queries in predicates re-evaluated for every input
      element (the "query avalanche");
    - [OrderBy] sorts its entire input even under a subsequent [Take].

    No code is generated and nothing is cached: this is the engine the
    compiled backends are measured against. *)

val engine : Lq_catalog.Engine_intf.t

val used_source_slots :
  Lq_value.Schema.t -> Lq_expr.Ast.query -> int list
(** Field slots of a source schema that some lambda of the query
    dereferences (by member name) — the instrumented run's model of which
    object fields a pipeline touches. *)
