lib/engines/compiled/cexpr.ml: Array List Lq_catalog Lq_expr Lq_value Option Printf String Value Vtype
