examples/quickstart.mli:
