lib/core/query_cache.ml: Hashtbl List Lq_catalog Printf
