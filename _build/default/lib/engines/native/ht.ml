type t = {
  nparts : int;
  trace : (int -> unit) option;
  base_addr : int;
  mutable buckets : int array;  (** dense slot + 1; 0 = empty *)
  mutable mask : int;
  (* Dense key storage: parts.(p).(slot) *)
  mutable parts : int array array;
  mutable nkeys : int;
  (* Attached row chains, stored newest-first with recursion to restore
     insertion order (same trick as Int_table.Multi). *)
  mutable heads : int array;  (** per slot; -1 = none *)
  mutable chain_rows : int array;
  mutable chain_next : int array;
  mutable nchain : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create ?trace ~nparts ~hint () =
  let cap = next_pow2 (max 16 (hint * 2)) in
  {
    nparts;
    trace;
    base_addr = Lq_storage.Addr_space.alloc (1 lsl 28);
    buckets = Array.make cap 0;
    mask = cap - 1;
    parts = Array.init (max nparts 1) (fun _ -> Array.make (max 16 hint) 0);
    nkeys = 0;
    heads = Array.make (max 16 hint) (-1);
    chain_rows = Array.make 16 0;
    chain_next = Array.make 16 (-1);
    nchain = 0;
  }

let hash_key t (key : int array) =
  let h = ref 0x811C9DC5 in
  for p = 0 to t.nparts - 1 do
    h := (!h lxor key.(p)) * 0x01000193
  done;
  !h land max_int

let key_matches t slot (key : int array) =
  let rec go p = p = t.nparts || (t.parts.(p).(slot) = key.(p) && go (p + 1)) in
  go 0

(* Each bucket probe models one random read into the table's memory. *)
let note_probe t bucket =
  match t.trace with
  | None -> ()
  | Some trace -> trace (t.base_addr + (bucket * 16))

let rec probe t key h =
  let b = h land t.mask in
  note_probe t b;
  let v = t.buckets.(b) in
  if v = 0 then (b, -1)
  else if key_matches t (v - 1) key then (b, v - 1)
  else probe t key (h + 1)

let find t key =
  match probe t key (hash_key t key) with
  | _, -1 -> None
  | _, slot -> Some slot

let grow_dense t =
  let cap = Array.length t.heads * 2 in
  t.parts <-
    Array.map
      (fun old ->
        let arr = Array.make cap 0 in
        Array.blit old 0 arr 0 t.nkeys;
        arr)
      t.parts;
  let heads = Array.make cap (-1) in
  Array.blit t.heads 0 heads 0 t.nkeys;
  t.heads <- heads

let grow_buckets t =
  let cap = Array.length t.buckets * 2 in
  t.buckets <- Array.make cap 0;
  t.mask <- cap - 1;
  for slot = 0 to t.nkeys - 1 do
    let key = Array.init t.nparts (fun p -> t.parts.(p).(slot)) in
    let rec place h =
      let b = h land t.mask in
      if t.buckets.(b) = 0 then t.buckets.(b) <- slot + 1 else place (h + 1)
    in
    place (hash_key t key)
  done

let lookup_or_insert t key =
  let b, slot = probe t key (hash_key t key) in
  if slot >= 0 then slot
  else begin
    if t.nkeys = Array.length t.heads then grow_dense t;
    let slot = t.nkeys in
    for p = 0 to t.nparts - 1 do
      t.parts.(p).(slot) <- key.(p)
    done;
    t.heads.(slot) <- -1;
    t.buckets.(b) <- slot + 1;
    t.nkeys <- slot + 1;
    if t.nkeys * 10 > Array.length t.buckets * 7 then grow_buckets t;
    slot
  end

let count t = t.nkeys
let key_part t ~slot ~part = t.parts.(part).(slot)

let attach t ~slot row =
  if t.nchain = Array.length t.chain_rows then begin
    let cap = t.nchain * 2 in
    let rows = Array.make cap 0 and next = Array.make cap (-1) in
    Array.blit t.chain_rows 0 rows 0 t.nchain;
    Array.blit t.chain_next 0 next 0 t.nchain;
    t.chain_rows <- rows;
    t.chain_next <- next
  end;
  let cell = t.nchain in
  t.chain_rows.(cell) <- row;
  t.chain_next.(cell) <- t.heads.(slot);
  t.heads.(slot) <- cell;
  t.nchain <- cell + 1

let iter_attached t ~slot f =
  let rec go cell =
    if cell >= 0 then begin
      go t.chain_next.(cell);
      (match t.trace with
      | None -> ()
      | Some trace -> trace (t.base_addr + (1 lsl 20) + (cell * 8)));
      f t.chain_rows.(cell)
    end
  in
  go t.heads.(slot)

let attached_count t ~slot =
  let n = ref 0 in
  let rec go cell =
    if cell >= 0 then begin
      incr n;
      go t.chain_next.(cell)
    end
  in
  go t.heads.(slot);
  !n

let memory_bytes t =
  (Array.length t.buckets * 8)
  + (t.nparts * Array.length t.heads * 8)
  + (Array.length t.heads * 8)
  + (Array.length t.chain_rows * 16)

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  t.nkeys <- 0;
  t.nchain <- 0
