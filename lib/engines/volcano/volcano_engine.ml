open Lq_value
module Ast = Lq_expr.Ast
module Eval = Lq_expr.Eval
module Scalar = Lq_expr.Scalar
module Catalog = Lq_catalog.Catalog
module Engine_intf = Lq_catalog.Engine_intf
module Rowstore = Lq_storage.Rowstore
module P = Lq_plan.Plan

(* The classic iterator interface: explicit state, one boxed tuple per
   [next], interpretation everywhere. *)
type operator = {
  op_open : unit -> unit;
  next : unit -> Value.t option;
  close : unit -> unit;
}

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let rec build ?instr ctx cat (p : P.t) : operator =
  let apply1 l v = Eval.apply ctx ~env:[] l [ v ] in
  match p.P.op with
  | P.Scan s ->
    (* Scans decode relational rows into boxed tuples, one per next.
       Under instrumentation each decode touches every field of the row
       (the whole-row traffic that makes the iterator model expensive on
       a row store), reported to the cache model at its flat address. *)
    let store = Catalog.store (Catalog.table cat s.P.table) in
    let nfields = Array.length (Lq_storage.Layout.fields (Rowstore.layout store)) in
    let trace_row =
      match instr with
      | None -> fun _ -> ()
      | Some (i : Lq_catalog.Instr.t) ->
        fun row ->
          for col = 0 to nfields - 1 do
            i.Lq_catalog.Instr.trace (Rowstore.addr store ~row ~col)
          done
    in
    let pos = ref 0 in
    {
      op_open = (fun () -> pos := 0);
      next =
        (fun () ->
          if !pos >= Rowstore.length store then None
          else begin
            trace_row !pos;
            let v = Rowstore.row_value store !pos in
            incr pos;
            Some v
          end);
      close = ignore;
    }
  | P.Filter (src, preds) ->
    let input = build ?instr ctx cat src in
    (* Conjuncts are cost-ordered in the plan; test cheapest first. *)
    let passes v =
      List.for_all (fun (pr : P.pred) -> Value.to_bool (apply1 pr.P.lambda v)) preds
    in
    {
      input with
      next =
        (fun () ->
          let rec loop () =
            match input.next () with
            | None -> None
            | Some v -> if passes v then Some v else loop ()
          in
          loop ());
    }
  | P.Project (src, sel) ->
    let input = build ?instr ctx cat src in
    { input with next = (fun () -> Option.map (apply1 sel) (input.next ())) }
  | P.Join { P.left; right; left_key; right_key; result; strategy = _ } ->
    let louter = build ?instr ctx cat left in
    let rinner = build ?instr ctx cat right in
    let table = Vtbl.create 1024 in
    let pending = ref [] in
    let drain_inner () =
      rinner.op_open ();
      let rec loop () =
        match rinner.next () with
        | None -> ()
        | Some v ->
          let k = apply1 right_key v in
          (match Vtbl.find_opt table k with
          | Some cell -> cell := v :: !cell
          | None -> Vtbl.add table k (ref [ v ]));
          loop ()
      in
      loop ();
      rinner.close ()
    in
    {
      op_open =
        (fun () ->
          Vtbl.reset table;
          pending := [];
          drain_inner ();
          louter.op_open ());
      next =
        (fun () ->
          let rec loop () =
            match !pending with
            | r :: rest ->
              pending := rest;
              Some r
            | [] -> (
              match louter.next () with
              | None -> None
              | Some l -> (
                match Vtbl.find_opt table (apply1 left_key l) with
                | None -> loop ()
                | Some cell ->
                  pending :=
                    List.rev_map (fun r -> Eval.apply ctx ~env:[] result [ l; r ]) !cell;
                  loop ()))
          in
          loop ());
      close = louter.close;
    }
  | P.Aggregate a ->
    (* Interpretation ignores the plan's fused registry: the evaluator
       re-walks the materialized item lists per aggregate, which is the
       per-tuple overhead this engine exists to exhibit. *)
    let { P.input = group_source; key; group_result; _ } = a in
    let input = build ?instr ctx cat group_source in
    let results = ref [] in
    let materialize () =
      input.op_open ();
      let table = Vtbl.create 256 in
      let order = ref [] in
      let rec loop () =
        match input.next () with
        | None -> ()
        | Some v ->
          let k = apply1 key v in
          (match Vtbl.find_opt table k with
          | Some cell -> cell := v :: !cell
          | None ->
            Vtbl.add table k (ref [ v ]);
            order := k :: !order);
          loop ()
      in
      loop ();
      input.close ();
      results :=
        List.rev_map
          (fun k ->
            let g =
              Eval.group_value ~key:k ~items:(List.rev !(Vtbl.find table k))
            in
            match group_result with
            | None -> g
            | Some sel -> apply1 sel g)
          !order
    in
    {
      op_open = (fun () -> materialize ());
      next =
        (fun () ->
          match !results with
          | [] -> None
          | r :: rest ->
            results := rest;
            Some r);
      close = ignore;
    }
  | P.Sort (src, keys) -> build_sort ?instr ctx cat src keys
  | P.Top_k { input; keys; limit } ->
    (* No bounded heap in the iterator model: full sort, then limit. *)
    take_op ctx (build_sort ?instr ctx cat input keys) limit
  | P.Limit (src, n) -> take_op ctx (build ?instr ctx cat src) n
  | P.Offset (src, n) ->
    let input = build ?instr ctx cat src in
    let skipped = ref false in
    {
      input with
      op_open =
        (fun () ->
          skipped := false;
          input.op_open ());
      next =
        (fun () ->
          if not !skipped then begin
            skipped := true;
            let k = Value.to_int (Eval.expr ctx ~env:[] n) in
            let rec drop i = if i > 0 && Option.is_some (input.next ()) then drop (i - 1) in
            drop k
          end;
          input.next ());
    }
  | P.Distinct src ->
    let input = build ?instr ctx cat src in
    let seen = Vtbl.create 256 in
    {
      input with
      op_open =
        (fun () ->
          Vtbl.reset seen;
          input.op_open ());
      next =
        (fun () ->
          let rec loop () =
            match input.next () with
            | None -> None
            | Some v ->
              if Vtbl.mem seen v then loop ()
              else begin
                Vtbl.add seen v ();
                Some v
              end
          in
          loop ());
    }

and build_sort ?instr ctx cat src keys : operator =
  let apply1 l v = Eval.apply ctx ~env:[] l [ v ] in
  let input = build ?instr ctx cat src in
    let sorted = ref [] in
    {
      op_open =
        (fun () ->
          input.op_open ();
          let rows = ref [] in
          let rec loop () =
            match input.next () with
            | None -> ()
            | Some v ->
              rows := v :: !rows;
              loop ()
          in
          loop ();
          input.close ();
          let arr = Array.of_list (List.rev !rows) in
          let keyed =
            Array.map
              (fun v -> List.map (fun (k : Ast.sort_key) -> apply1 k.Ast.by v) keys)
              arr
          in
          let idx = Array.init (Array.length arr) Fun.id in
          let cmp i j =
            let rec go ks a b =
              match (ks, a, b) with
              | [], [], [] -> Int.compare i j
              | (k : Ast.sort_key) :: ks, x :: a, y :: b ->
                let c = Scalar.cmp x y in
                let c = match k.Ast.dir with Ast.Asc -> c | Ast.Desc -> -c in
                if c <> 0 then c else go ks a b
              | _ -> assert false
            in
            go keys keyed.(i) keyed.(j)
          in
          Array.sort cmp idx;
          sorted := Array.to_list (Array.map (fun i -> arr.(i)) idx));
      next =
        (fun () ->
          match !sorted with
          | [] -> None
          | r :: rest ->
            sorted := rest;
            Some r);
      close = ignore;
    }
and take_op ctx (input : operator) n : operator =
  let remaining = ref 0 in
    {
      op_open =
        (fun () ->
          remaining := Value.to_int (Eval.expr ctx ~env:[] n);
          input.op_open ());
      next =
        (fun () ->
          if !remaining <= 0 then None
          else
            match input.next () with
            | None -> None
            | some ->
              decr remaining;
              some);
      close = input.close;
    }

let engine : Engine_intf.t =
  {
    name = "sqlserver-interpreted";
    describe = "Volcano stand-in: interpreted open/next/close over the row store";
    caps = { Engine_intf.caps_any with needs_flat_sources = true };
    prepare =
      (fun ?instr cat query ->
        (* Interpreted engines generate no code: lowering to the shared
           plan is the whole of their preparation. *)
        (try
           List.iter
             (fun s ->
               if Catalog.mem cat s then
                 ignore (Catalog.store (Catalog.table cat s) : Rowstore.t))
             (Ast.sources_of_query query)
         with Catalog.Not_flat t ->
           Engine_intf.unsupported "relation %S is not flat" t);
        let t0 = Lq_metrics.Profile.now_ms () in
        let plan = Lq_plan.Lower.lower cat query in
        let codegen_ms = Lq_metrics.Profile.now_ms () -. t0 in
        {
          Engine_intf.execute =
            (fun ?profile ~params () ->
              let run () =
                let ctx = Catalog.eval_ctx cat ~params in
                let root = build ?instr ctx cat plan in
                root.op_open ();
                let acc = ref [] in
                let rec loop () =
                  match root.next () with
                  | None -> ()
                  | Some v ->
                    acc := v :: !acc;
                    loop ()
                in
                loop ();
                root.close ();
                List.rev !acc
              in
              match profile with
              | None -> run ()
              | Some p -> Lq_metrics.Profile.time p "Interpret plan (Volcano)" run);
          codegen_ms;
          source = None;
        });
  }
