lib/core/result_cache.ml: Buffer Hashtbl List Lq_value String Value
