lib/core/engines.mli: Lq_catalog
