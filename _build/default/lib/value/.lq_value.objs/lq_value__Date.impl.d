lib/value/date.ml: Char Format Printf String
