lib/engines/native/ht.mli:
