open Lq_value
module Ast = Lq_expr.Ast
module Scalar = Lq_expr.Scalar
module Typecheck = Lq_expr.Typecheck

type rt = {
  frame : Value.t array;
  params : Value.t array;
}

type compiled = rt -> Value.t

type ctx = {
  mutable params : string list;  (** reversed slot order *)
  mutable nparams : int;
  mutable nslots : int;
}

let ctx () = { params = []; nparams = 0; nslots = 0 }

let param_slot t name =
  let rec find i = function
    | [] -> -1
    | p :: _ when String.equal p name -> t.nparams - 1 - i
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 t.params with
  | -1 ->
    let slot = t.nparams in
    t.params <- name :: t.params;
    t.nparams <- slot + 1;
    slot
  | slot -> slot

let param_names t = List.rev t.params

let alloc_slot t =
  let slot = t.nslots in
  t.nslots <- slot + 1;
  slot

let frame_size t = t.nslots

let make_rt t ~params =
  let block = Array.make (max 1 t.nparams) Value.Null in
  List.iteri
    (fun i name ->
      match List.assoc_opt name params with
      | Some v -> block.(i) <- v
      | None -> Lq_catalog.Engine_intf.execution_failed "unbound query parameter %S" name)
    (param_names t);
  { frame = Array.make (max 1 t.nslots) Value.Null; params = block }

type binding = { var : string; slot : int; vty : Vtype.t option }

let record_index fields name =
  let rec go i = function
    | [] -> None
    | (n, ty) :: _ when String.equal n name -> Some (i, ty)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 fields

let member_error recv name =
  Typecheck.error "compiled member access: %s has no member %S"
    (match recv with Some ty -> Vtype.to_string ty | None -> "<dynamic>")
    name

let field_value v i name =
  match v with
  | Value.Record fields ->
    let n, fv = Array.unsafe_get fields i in
    (* The positional invariant (runtime field order = static type order)
       is asserted cheaply here. *)
    if String.equal n name then fv else Value.field v name
  | other ->
    Lq_catalog.Engine_intf.execution_failed "compiled member %S on non-record %s" name
      (Value.to_string other)

let no_agg _ _ _ =
  Lq_catalog.Engine_intf.unsupported "aggregate outside a group context"

let no_subquery _ =
  Lq_catalog.Engine_intf.unsupported "nested sub-query not supported by this backend"

let compile t ~env ?(on_agg = no_agg) ?(on_subquery = no_subquery) expr =
  let rec go (e : Ast.expr) : compiled * Vtype.t option =
    match e with
    | Ast.Const v ->
      let ty = Value.type_of v in
      ((fun _ -> v), ty)
    | Ast.Param p ->
      let slot = param_slot t p in
      ((fun rt -> Array.unsafe_get rt.params slot), None)
    | Ast.Var name -> (
      match List.find_opt (fun b -> String.equal b.var name) env with
      | Some { slot; vty; _ } -> ((fun rt -> Array.unsafe_get rt.frame slot), vty)
      | None -> Typecheck.error "compiled expression: unbound variable %S" name)
    | Ast.Member (recv, name) -> (
      let crecv, rty = go recv in
      match rty with
      | Some (Vtype.Record fields) -> (
        match record_index fields name with
        | Some (i, fty) -> ((fun rt -> field_value (crecv rt) i name), Some fty)
        | None -> member_error rty name)
      | Some _ -> member_error rty name
      | None ->
        (* Dynamic receiver: fall back to name lookup. *)
        ((fun rt -> Value.field (crecv rt) name), None))
    | Ast.Unop (op, e) ->
      let ce, ty = go e in
      let rty =
        match (op, ty) with
        | Ast.Neg, t -> t
        | Ast.Not, _ -> Some Vtype.Bool
      in
      ((fun rt -> Scalar.unop op (ce rt)), rty)
    | Ast.Binop (Ast.And, a, b) ->
      let ca, _ = go a in
      let cb, _ = go b in
      ( (fun rt -> if Value.to_bool (ca rt) then cb rt else Value.Bool false),
        Some Vtype.Bool )
    | Ast.Binop (Ast.Or, a, b) ->
      let ca, _ = go a in
      let cb, _ = go b in
      ( (fun rt -> if Value.to_bool (ca rt) then Value.Bool true else cb rt),
        Some Vtype.Bool )
    | Ast.Binop (op, a, b) ->
      let ca, ta = go a in
      let cb, tb = go b in
      let rty =
        match op with
        | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> Some Vtype.Bool
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
          match (ta, tb) with
          | Some Vtype.Int, Some Vtype.Int -> Some Vtype.Int
          | Some Vtype.Float, Some (Vtype.Int | Vtype.Float)
          | Some Vtype.Int, Some Vtype.Float ->
            Some Vtype.Float
          | _ -> None)
        | Ast.And | Ast.Or -> Some Vtype.Bool
      in
      (* Specialize the hot numeric/comparison cases on static types. *)
      let c =
        match (op, ta, tb) with
        | Ast.Add, Some Vtype.Float, Some Vtype.Float ->
          fun rt -> Value.Float (Value.to_float (ca rt) +. Value.to_float (cb rt))
        | Ast.Sub, Some Vtype.Float, Some Vtype.Float ->
          fun rt -> Value.Float (Value.to_float (ca rt) -. Value.to_float (cb rt))
        | Ast.Mul, Some Vtype.Float, Some Vtype.Float ->
          fun rt -> Value.Float (Value.to_float (ca rt) *. Value.to_float (cb rt))
        | Ast.Add, Some Vtype.Int, Some Vtype.Int ->
          fun rt -> Value.Int (Value.to_int (ca rt) + Value.to_int (cb rt))
        | Ast.Sub, Some Vtype.Int, Some Vtype.Int ->
          fun rt -> Value.Int (Value.to_int (ca rt) - Value.to_int (cb rt))
        | Ast.Mul, Some Vtype.Int, Some Vtype.Int ->
          fun rt -> Value.Int (Value.to_int (ca rt) * Value.to_int (cb rt))
        | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _ ->
          let test =
            match op with
            | Ast.Lt -> fun c -> c < 0
            | Ast.Le -> fun c -> c <= 0
            | Ast.Gt -> fun c -> c > 0
            | Ast.Ge -> fun c -> c >= 0
            | Ast.Eq -> fun c -> c = 0
            | _ -> fun c -> c <> 0
          in
          fun rt -> Value.Bool (test (Scalar.cmp (ca rt) (cb rt)))
        | _ -> fun rt -> Scalar.binop op (ca rt) (cb rt)
      in
      (c, rty)
    | Ast.If (c, th, el) ->
      let cc, _ = go c in
      let ct, tt = go th in
      let ce, te = go el in
      let rty = match (tt, te) with
        | Some a, Some b when Vtype.equal a b -> Some a
        | _ -> None
      in
      ((fun rt -> if Value.to_bool (cc rt) then ct rt else ce rt), rty)
    | Ast.Call (f, args) ->
      let cargs = List.map (fun a -> fst (go a)) args in
      let rty =
        match f with
        | Ast.Starts_with | Ast.Ends_with | Ast.Contains | Ast.Like -> Some Vtype.Bool
        | Ast.Lower | Ast.Upper -> Some Vtype.String
        | Ast.Length | Ast.Year -> Some Vtype.Int
        | Ast.Add_days -> Some Vtype.Date
        | Ast.Abs -> None
      in
      (match cargs with
      | [ a ] -> ((fun rt -> Scalar.call f [ a rt ]), rty)
      | [ a; b ] -> ((fun rt -> Scalar.call f [ a rt; b rt ]), rty)
      | _ -> ((fun rt -> Scalar.call f (List.map (fun c -> c rt) cargs)), rty))
    | Ast.Agg (kind, src, sel) -> on_agg kind src sel
    | Ast.Subquery q -> on_subquery q
    | Ast.Record_of fields ->
      let names = Array.of_list (List.map fst fields) in
      let compiled = Array.of_list (List.map (fun (_, e) -> go e) fields) in
      let closures = Array.map fst compiled in
      let rty =
        let tys = Array.map snd compiled in
        if Array.for_all Option.is_some tys then
          Some
            (Vtype.Record
               (Array.to_list
                  (Array.mapi (fun i ty -> (names.(i), Option.get ty)) tys)))
        else None
      in
      ( (fun rt ->
          Value.Record (Array.mapi (fun i c -> (names.(i), c rt)) closures)),
        rty )
  in
  go expr
