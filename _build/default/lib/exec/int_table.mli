(** Open-addressing hash tables with [int] keys.

    The hash tables the generated C code of the paper would use: flat
    arrays, linear probing, no boxing. The native engine keys them with
    row keys or dictionary-encoded strings; payloads are row indexes or
    slot numbers.

    Keys may be any [int] except [min_int] (the empty marker). *)

type t

val create : int -> t
(** [create capacity_hint] *)

val length : t -> int

val find : t -> int -> int option
(** The payload bound to the key, if any. *)

val find_or_add : t -> int -> (unit -> int) -> int
(** Returns the existing payload or binds and returns [mk ()]. The
    group-by work-horse: the payload is typically a dense slot index. *)

val set : t -> int -> int -> unit
(** Binds or overwrites. *)

val iter : (int -> int -> unit) -> t -> unit

(** Multi-valued variant: one key, many payloads, preserving insertion
    order among a key's payloads — the join build side. *)
module Multi : sig
  type t

  val create : int -> t
  val length : t -> int
  val add : t -> int -> int -> unit

  val iter_matches : t -> int -> (int -> unit) -> unit
  (** Visits payloads bound to the key in insertion order. *)

  val fold_matches : t -> int -> ('acc -> int -> 'acc) -> 'acc -> 'acc
  val count_matches : t -> int -> int
end
