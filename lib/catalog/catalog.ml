open Lq_value

exception Not_flat of string

type table = {
  name : string;
  schema : Schema.t;
  rows : Value.t list;
  boxed : Value.t array Lazy.t;
  flat : Lq_storage.Rowstore.t Lazy.t;
  columns : Lq_storage.Colstore.t Lazy.t;
  heap_addrs : int array Lazy.t;
  force_mu : Mutex.t;
      (** serializes first-forcing of the lazy stores: concurrent
          [Lazy.force] from two Domains raises [Undefined], and a cold
          table's first queries arrive concurrently under the service's
          worker pool *)
  indexes : (string, Lq_exec.Int_table.Multi.t) Hashtbl.t;
}

type t = {
  tables : (string, table) Hashtbl.t;
  dict : Lq_storage.Dict.t;
  heap : Lq_cachesim.Heap_model.t;
  mutable listeners : (string -> unit) list;
      (** invalidation hooks, called with the table name on mutation *)
}

let create () =
  {
    tables = Hashtbl.create 16;
    dict = Lq_storage.Dict.create ();
    heap = Lq_cachesim.Heap_model.create ();
    listeners = [];
  }

let on_invalidate t f = t.listeners <- f :: t.listeners
let notify_invalidate t name = List.iter (fun f -> f name) t.listeners

let dict t = t.dict

let schema_is_flat schema =
  Array.for_all
    (fun (f : Schema.field) -> Vtype.is_scalar f.Schema.ty)
    (Schema.fields schema)

let make_table t ~name ~schema rows =
  let rec table =
    {
      name;
      schema;
      rows;
      boxed = lazy (Array.of_list rows);
      flat =
        lazy
          (if not (schema_is_flat schema) then raise (Not_flat name)
           else
             Lq_storage.Rowstore.of_records ~layout:(Lq_storage.Layout.of_schema schema)
               ~dict:t.dict rows);
      columns = lazy (Lq_storage.Colstore.of_rowstore (Lazy.force table.flat));
      heap_addrs =
        lazy
          (Lq_cachesim.Heap_model.alloc_rows t.heap ~nrows:(List.length rows)
             ~nfields:(Schema.arity schema));
      force_mu = Mutex.create ();
      indexes = Hashtbl.create 4;
    }
  in
  table

let add t ~name ~schema rows =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Catalog.add: table %S already registered" name);
  Hashtbl.add t.tables name (make_table t ~name ~schema rows)

let replace t ~name ~schema rows =
  Hashtbl.replace t.tables name (make_table t ~name ~schema rows);
  notify_invalidate t name

let remove t name =
  if Hashtbl.mem t.tables name then begin
    Hashtbl.remove t.tables name;
    notify_invalidate t name
  end

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise (Lq_expr.Eval.Unbound_source name)

let mem t name = Hashtbl.mem t.tables name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare
let schema table = table.schema
let name table = table.name
let rows table = table.rows
(* Every force goes through the table mutex — including reads of
   already-computed stores. [Lazy.is_val] cannot serve as a lock-free
   fast path: it reports [true] while another Domain is mid-force (the
   block carries [forcing_tag], not [lazy_tag]), so an unlocked force
   behind it still races into [Undefined]. The lock is per-query, not
   per-row, so the cost is noise. The [columns] thunk forces [flat]
   internally; that inner plain [Lazy.force] already holds the mutex,
   and every entry point is guarded here. *)
let force_store table l =
  Mutex.lock table.force_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock table.force_mu) (fun () -> Lazy.force l)

let boxed table = force_store table table.boxed
let row_count table = List.length table.rows
let is_flat table = schema_is_flat table.schema

let store table = force_store table table.flat

let cols table = force_store table table.columns
let column_encodings table = Lq_storage.Colstore.encodings (cols table)
let heap_addrs table = force_store table table.heap_addrs

let eval_ctx t ~params =
  Lq_expr.Eval.ctx ~catalog:(fun name -> (table t name).rows) ~params ()

let tenv t ~params =
  Lq_expr.Typecheck.tenv
    ~source_type:(fun name -> Schema.to_vtype (table t name).schema)
    ~param_type:(fun name ->
      match List.assoc_opt name params with
      | Some ty -> ty
      | None -> Lq_expr.Typecheck.error "unknown parameter %S" name)
    ()

let infer_param_types _t ~params =
  List.filter_map
    (fun (name, v) -> Option.map (fun ty -> (name, ty)) (Value.type_of v))
    params

(* --- hash indexes (§9 future work) --- *)

let create_index t ~table:tname ~column =
  let tbl = table t tname in
  if not (Hashtbl.mem tbl.indexes column) then begin
    let store = store tbl in
    let layout = Lq_storage.Rowstore.layout store in
    let col = Lq_storage.Layout.field_index_exn layout column in
    (match (Lq_storage.Layout.field_at layout col).Lq_storage.Layout.ftype with
    | Lq_storage.Ftype.F64 ->
      invalid_arg (Printf.sprintf "Catalog.create_index: float column %S" column)
    | _ -> ());
    let n = Lq_storage.Rowstore.length store in
    let index = Lq_exec.Int_table.Multi.create (max 16 n) in
    let read = Lq_storage.Rowstore.int_reader store col in
    for row = 0 to n - 1 do
      Lq_exec.Int_table.Multi.add index (read row) row
    done;
    Hashtbl.add tbl.indexes column index
  end

let index table column = Hashtbl.find_opt table.indexes column
let indexed_columns table = Hashtbl.fold (fun c _ acc -> c :: acc) table.indexes []
