(* Strict command-line parsing shared by the bench executables.

   The previous hand-rolled loops silently collected unknown "--flags" as
   positional targets (`bench/main.exe --fs 0.05` ran every experiment at
   the default scale with no error); here any token starting with '-'
   that is not a declared option is a hard usage error. *)

type spec =
  | Flag of string * (unit -> unit) * string
      (* --name, action, doc *)
  | Value of string * string * (string -> unit) * string
      (* --name, metavar, action (raises Failure on a bad value), doc *)

let spec_name = function Flag (n, _, _) | Value (n, _, _, _) -> n

let usage ~prog ?(positional_doc = "") specs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "usage: %s [options]%s\n" prog positional_doc);
  Buffer.add_string buf "options:\n";
  List.iter
    (fun s ->
      match s with
      | Flag (n, _, doc) -> Buffer.add_string buf (Printf.sprintf "  %-24s %s\n" n doc)
      | Value (n, mv, _, doc) ->
        Buffer.add_string buf (Printf.sprintf "  %-24s %s\n" (n ^ " " ^ mv) doc))
    specs;
  Buffer.add_string buf "  --help                   print this message\n";
  Buffer.contents buf

let fail ~prog ?positional_doc specs fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_string (Printf.sprintf "%s: %s\n%s" prog msg (usage ~prog ?positional_doc specs));
      exit 2)
    fmt

(* [parse ~prog ?positional specs argv] walks [argv] (program name
   excluded). Tokens starting with '-' must match a declared option;
   anything else goes to [positional] (its absence makes positionals a
   usage error). [--help] prints usage and exits 0. *)
let parse ~prog ?positional ?positional_doc specs argv =
  let rec go = function
    | [] -> ()
    | "--help" :: _ ->
      print_string (usage ~prog ?positional_doc specs);
      exit 0
    | tok :: rest when String.length tok > 0 && tok.[0] = '-' -> (
      match List.find_opt (fun s -> String.equal (spec_name s) tok) specs with
      | None -> fail ~prog ?positional_doc specs "unknown option %s" tok
      | Some (Flag (_, action, _)) ->
        action ();
        go rest
      | Some (Value (name, mv, action, _)) -> (
        match rest with
        | [] -> fail ~prog ?positional_doc specs "option %s expects %s" name mv
        | v :: rest -> (
          match action v with
          | () -> go rest
          | exception Failure msg ->
            fail ~prog ?positional_doc specs "bad value %S for %s: %s" v name msg)))
    | tok :: rest -> (
      match positional with
      | Some f ->
        f tok;
        go rest
      | None -> fail ~prog ?positional_doc specs "unexpected argument %S" tok)
  in
  go argv

let float_value v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> failwith "expected a number"

let int_value v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> failwith "expected an integer"
