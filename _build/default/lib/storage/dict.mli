(** String dictionary.

    Flat storage cannot hold pointers, so string fields store 4-byte codes
    into a dictionary. Equality on codes coincides with equality on strings
    only within one dictionary; the catalog therefore shares a single
    dictionary across all tables of a dataset, which keeps cross-table
    string joins sound. Pattern predicates ([LIKE], prefixes) decode
    through {!get}. *)

type t

val create : unit -> t
val intern : t -> string -> int
(** The code of the string, interning it on first sight. *)

val find : t -> string -> int option
(** The code, if the string was interned before — constants compiled into
    predicates use this: an unseen constant matches nothing. *)

val get : t -> int -> string
(** @raise Invalid_argument on an unknown code. *)

val size : t -> int
