lib/exec/prng.mli:
