lib/enum/ptbl.ml: Array List Option
