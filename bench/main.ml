(* Benchmark harness: regenerates every table and figure of §7 of
   "Code Generation for Efficient Query Processing in Managed Runtimes"
   (Nagel, Bierman, Viglas, VLDB 2014), plus the in-text microbenchmarks.

   Usage:
     bench/main.exe                     all experiments, default scale
     bench/main.exe fig7 fig13 table1   a subset
     bench/main.exe --sf 0.05           bigger dataset
     bench/main.exe --quick             coarse sweeps, single timed run

   Absolute numbers depend on the machine and on OCaml-vs-CLR/C
   differences; the figures' *shapes* (who wins, by what factor, where
   crossovers happen) are what this harness reproduces. *)

open Lq_value
module Engine_intf = Lq_catalog.Engine_intf
module Provider = Lq_core.Provider
module Profile = Lq_metrics.Profile
module Args = Lq_bench.Args
module Suite = Lq_bench.Suite

(* ------------------------------------------------------------------ *)
(* configuration *)

let sf = ref 0.02
let quick = ref false
let targets = ref []

let arg_specs =
  [
    Args.Value
      ("--sf", "F", (fun v -> sf := Args.float_value v), "TPC-H scale factor (default 0.02)");
    Args.Flag ("--quick", (fun () -> quick := true), "coarse sweeps, single timed run");
  ]

let parse_args () =
  Args.parse ~prog:"bench/main.exe"
    ~positional:(fun t -> targets := t :: !targets)
    ~positional_doc:" [experiment...]" arg_specs
    (List.tl (Array.to_list Sys.argv))

let selectivities () =
  if !quick then [ 0.1; 0.5; 1.0 ]
  else [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let timed_runs () = if !quick then 1 else 3

(* ------------------------------------------------------------------ *)
(* timing helpers (shared with the scorer and the load generator) *)

let now_ms = Profile.now_ms
let time_engine prov ~engine = Suite.time_engine ~runs:(timed_runs ()) prov ~engine
let profile_engine = Suite.profile_engine

(* ------------------------------------------------------------------ *)
(* output helpers *)

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let note fmt = Printf.printf (fmt ^^ "\n%!")

let print_series ~xlabel ~xs ~series =
  Printf.printf "%-12s" xlabel;
  List.iter (fun (name, _) -> Printf.printf " %16s" name) series;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-12s" x;
      List.iter (fun (_, cell) -> Printf.printf " %16s" (cell x)) series;
      print_newline ())
    xs;
  print_string "%!"

let fmt_ms = function
  | Some (ms, _) -> Printf.sprintf "%.1f" ms
  | None -> "unsupported"

(* ------------------------------------------------------------------ *)
(* shared state *)

let catalog = lazy (Lq_tpch.Dbgen.load ~sf:!sf ())
let provider = lazy (Provider.create (Lazy.force catalog))

let engines_fig =
  lazy
    [
      ("LINQ-to-Obj", Lq_core.Engines.linq_to_objects);
      ("C# Code", Lq_core.Engines.compiled_csharp);
      ("C Code", Lq_core.Engines.compiled_c);
      ("C#/C", Lq_core.Engines.hybrid);
      ("C#/C(Buf)", Lq_core.Engines.hybrid_buffered);
    ]

let run_sweep ~workload ~engines =
  let prov = Lazy.force provider in
  List.map
    (fun (name, engine) ->
      ( name,
        List.map
          (fun sel ->
            ( sel,
              time_engine prov ~engine ~params:(Lq_tpch.Workloads.params ~sel) workload ))
          (selectivities ()) ))
    engines

let print_sweep sweep =
  let xs = List.map (fun s -> Printf.sprintf "%.1f" s) (selectivities ()) in
  let series =
    List.map
      (fun (name, points) ->
        ( name,
          fun x ->
            let sel = float_of_string x in
            fmt_ms (List.assoc sel points) ))
      sweep
  in
  print_series ~xlabel:"selectivity" ~xs ~series

(* ------------------------------------------------------------------ *)
(* Fig. 7 / 9 / 11: evaluation time vs selectivity *)

let fig7 () =
  header "Figure 7: aggregation over selection (Q1 aggregates), time [ms] vs selectivity";
  note "expected shape: C < C#/C(Buf) <= C#/C < C# < LINQ-to-objects; gap widens with selectivity";
  print_sweep
    (run_sweep ~workload:Lq_tpch.Workloads.aggregation ~engines:(Lazy.force engines_fig))

let fig9 () =
  header "Figure 9: sorting over selection (order lineitem by extendedprice), time [ms]";
  note "expected shape: LINQ tracks C# (same quicksort); C and C#/C(Min) similar and fastest";
  let engines =
    [
      ("LINQ-to-Obj", Lq_core.Engines.linq_to_objects);
      ("C# Code", Lq_core.Engines.compiled_csharp);
      ("C Code", Lq_core.Engines.compiled_c);
      ("C#/C(Min)", Lq_core.Engines.hybrid_min);
    ]
  in
  print_sweep (run_sweep ~workload:Lq_tpch.Workloads.sorting ~engines)

let fig11 () =
  header "Figure 11: join over selections (Q3 joins), time [ms] vs selectivity";
  note "expected shape: C fastest; the four hybrid variants close together; LINQ slowest";
  let engines =
    Lazy.force engines_fig
    @ [
        ("C#/C(Min)", Lq_core.Engines.hybrid_min);
        ("C#/C(MinBuf)", Lq_core.Engines.hybrid_min_buffered);
      ]
  in
  print_sweep (run_sweep ~workload:Lq_tpch.Workloads.join ~engines)

(* ------------------------------------------------------------------ *)
(* Fig. 8 / 10 / 12: hybrid cost breakdown *)

let breakdown ~title ~engine ~workload ~expected_phases =
  header title;
  let prov = Lazy.force provider in
  let data =
    List.map
      (fun sel ->
        let phases =
          match
            profile_engine prov ~engine ~params:(Lq_tpch.Workloads.params ~sel) workload
          with
          | Some phases -> phases
          | None -> []
        in
        (Printf.sprintf "%.1f" sel, phases))
      (selectivities ())
  in
  let xs = List.map fst data in
  let series =
    List.map
      (fun phase ->
        ( phase,
          fun x ->
            match List.assoc_opt phase (List.assoc x data) with
            | Some ms -> Printf.sprintf "%.1f" ms
            | None -> "-" ))
      expected_phases
  in
  print_series ~xlabel:"selectivity" ~xs ~series;
  note
    "(managed phases are timed per element in profiled runs; totals are inflated, the split is the signal)"

let fig8 () =
  breakdown
    ~title:
      "Figure 8: aggregation cost breakdown for compiled C#/C (full materialization) [ms]"
    ~engine:Lq_core.Engines.hybrid ~workload:Lq_tpch.Workloads.aggregation
    ~expected_phases:
      [
        "Iterate data (C#)";
        "Apply predicates (C#)";
        "Data staging (C#)";
        "Aggregation (C)";
        "Return result (C/C#)";
      ]

let fig10 () =
  breakdown ~title:"Figure 10: sorting cost breakdown for compiled C#/C (Min) [ms]"
    ~engine:Lq_core.Engines.hybrid_min ~workload:Lq_tpch.Workloads.sorting
    ~expected_phases:
      [
        "Iterate data (C#)";
        "Apply predicates (C#)";
        "Data staging (C#)";
        "Quicksort (C)";
        "Return result (C/C#)";
      ]

let fig12 () =
  breakdown ~title:"Figure 12: join cost breakdown for compiled C#/C (Max) [ms]"
    ~engine:Lq_core.Engines.hybrid ~workload:Lq_tpch.Workloads.join
    ~expected_phases:
      [
        "Iterate data (C#)";
        "Apply predicates (C#)";
        "Data staging (C#)";
        "Build hash tables, probe (C)";
        "Return result (C/C#)";
      ]

(* ------------------------------------------------------------------ *)
(* Fig. 13: TPC-H queries, % of LINQ-to-objects *)

let tpch_params = Lq_tpch.Queries.default_params

let fig13 () =
  header "Figure 13: TPC-H Q1/Q2/Q3 evaluation time, % of LINQ-to-objects";
  note "expected shape: C < C#/C(Buf) ~ C#/C < C# < 100%%";
  let prov = Lazy.force provider in
  let results =
    List.map
      (fun (qname, q) ->
        ( qname,
          List.map
            (fun (ename, engine) -> (ename, time_engine prov ~engine ~params:tpch_params q))
            (Lazy.force engines_fig) ))
      Lq_tpch.Queries.all
  in
  let series =
    List.map
      (fun (ename, _) ->
        ( ename,
          fun qname ->
            let row = List.assoc qname results in
            match (List.assoc "LINQ-to-Obj" row, List.assoc ename row) with
            | Some (base, _), Some (ms, _) -> Printf.sprintf "%.1f%%" (100.0 *. ms /. base)
            | _ -> "unsupported" ))
      (Lazy.force engines_fig)
  in
  print_series ~xlabel:"query" ~xs:(List.map fst Lq_tpch.Queries.all) ~series;
  note "absolute times [ms]:";
  List.iter
    (fun (qname, row) ->
      Printf.printf "  %-4s" qname;
      List.iter (fun (ename, r) -> Printf.printf " %s=%s" ename (fmt_ms r)) row;
      print_newline ())
    results

(* ------------------------------------------------------------------ *)
(* Fig. 14: LLC misses, % of LINQ-to-objects *)

let fig14 () =
  header "Figure 14: simulated last-level-cache misses, % of LINQ-to-objects";
  note "trace-driven 3-level cache model (32K/256K/3M, 64B lines); reduced scale";
  let small_sf = Float.min !sf 0.008 in
  let cat = Lq_tpch.Dbgen.load ~sf:small_sf () in
  let prov = Provider.create cat in
  let misses engine q =
    let h = Lq_cachesim.Hierarchy.default () in
    match Provider.run_instrumented prov ~engine ~params:tpch_params h q with
    | _ -> Some (Lq_cachesim.Hierarchy.llc_misses h)
    | exception Engine_intf.Unsupported _ -> None
  in
  let results =
    List.map
      (fun (qname, q) ->
        (qname, List.map (fun (ename, engine) -> (ename, misses engine q)) (Lazy.force engines_fig)))
      Lq_tpch.Queries.all
  in
  let series =
    List.map
      (fun (ename, _) ->
        ( ename,
          fun qname ->
            let row = List.assoc qname results in
            match (List.assoc "LINQ-to-Obj" row, List.assoc ename row) with
            | Some base, Some m ->
              Printf.sprintf "%.1f%%" (100.0 *. float_of_int m /. float_of_int (max 1 base))
            | _ -> "unsupported" ))
      (Lazy.force engines_fig)
  in
  print_series ~xlabel:"query" ~xs:(List.map fst Lq_tpch.Queries.all) ~series;
  note "expected shape: all compiled variants < 100%%; C lowest on Q1/Q2 (compact rows);";
  note "on Q3 the hybrids' small staged hash tables keep them competitive with C"

(* ------------------------------------------------------------------ *)
(* Table 1: comparison to DBMS stand-ins *)

let table1 () =
  header "Table 1: TPC-H queries against the DBMS stand-ins [ms]";
  note "SQL Server (interpreted) -> Volcano; SQL Server native -> Hekaton-style native";
  note "(receives the *correlated* Q2, which it refuses, as in the paper); VectorWise ->";
  note "vectorized columnar engine. LINQ-to-objects uses the hand-optimized Q2 plan.";
  let prov = Lazy.force provider in
  let rows =
    [
      ("SQLServer-interp", Lq_core.Engines.sqlserver_interpreted, `Decorrelated);
      ("SQLServer-native", Lq_core.Engines.sqlserver_native, `Correlated);
      ("VectorWise", Lq_core.Engines.vectorwise, `Decorrelated);
      ("LINQ-to-objects", Lq_core.Engines.linq_to_objects, `Decorrelated);
      ("Compiled C#/C", Lq_core.Engines.hybrid, `Decorrelated);
    ]
  in
  Printf.printf "%-18s %12s %12s %12s\n" "system" "Q1" "Q2" "Q3";
  List.iter
    (fun (name, engine, q2_form) ->
      let q2 =
        match q2_form with
        | `Decorrelated -> Lq_tpch.Queries.q2
        | `Correlated -> Lq_tpch.Queries.q2_correlated
      in
      let cell q =
        match time_engine prov ~engine ~params:tpch_params q with
        | Some (ms, _) -> Printf.sprintf "%.1f" ms
        | None -> "-"
      in
      Printf.printf "%-18s %12s %12s %12s\n%!" name (cell Lq_tpch.Queries.q1) (cell q2)
        (cell Lq_tpch.Queries.q3))
    rows;
  note "expected shape: compiled C#/C ~ VectorWise, well below both LINQ and Volcano;";
  note "native refuses Q2 (nested sub-query); Volcano slowest on the aggregation-heavy Q1"

(* ------------------------------------------------------------------ *)
(* §2.3 / §7 microbenchmarks *)

let time_query prov engine q params =
  match time_engine prov ~engine ~params q with
  | Some (ms, _) -> ms
  | None -> nan

let micro () =
  header "Microbenchmarks (§2.3 and §7 in-text numbers)";
  let prov = Lazy.force provider in
  let q1 = Lq_tpch.Queries.q1 in

  note "\n-- aggregation fusion (paper: single loop 38%%, +dedup 12%%, +collapse 10%%) --";
  (* Q1 written the way LINQ users write it: averages spelled out as
     Sum/Count, so the same Sum and Count appear several times — the
     "overlaps in the aggregation computations" §2.3 calls out. *)
  let q1_with_overlaps =
    let open Lq_expr.Dsl in
    let sum_qty g = sum (v g) "x" (v "x" $. "l_quantity") in
    let sum_price g = sum (v g) "x" (v "x" $. "l_extendedprice") in
    source "lineitem"
    |> where "l"
         (v "l" $. "l_shipdate" <=: add_days (date "1998-12-01") (neg (p "q1_delta")))
    |> group_by
         ~key:("l", v "l" $. "l_returnflag")
         ~result:
           ( "g",
             record
               [
                 ("flag", v "g" $. "Key");
                 ("sum_qty", sum_qty "g");
                 ("sum_price", sum_price "g");
                 ("avg_qty", sum_qty "g" /: count (v "g"));
                 ("avg_price", sum_price "g" /: count (v "g"));
                 ("count_order", count (v "g"));
               ] )
  in
  ignore q1;
  let open Lq_compiled.Options in
  let variants =
    [
      ( "per-aggregate passes (naive)",
        { default with fuse_aggregates = false; dedup_aggregates = false } );
      ("fused, no dedup", { default with dedup_aggregates = false });
      ("fused + dedup (default)", default);
    ]
  in
  let timings =
    List.map
      (fun (name, opts) ->
        let engine = Lq_compiled.Csharp_engine.engine_with opts in
        (name, time_query prov engine q1_with_overlaps tpch_params))
      variants
  in
  let naive_ms = snd (List.hd timings) in
  List.iter
    (fun (name, ms) ->
      Printf.printf "  %-34s %8.1f ms   (%.0f%% of naive)\n%!" name ms
        (100.0 *. ms /. naive_ms))
    timings;

  note "\n-- selection push-down on a Q3-style query (paper: 35%% improvement) --";
  let open Lq_expr.Dsl in
  (* filters written *above* the joins, as a naive user would declare them *)
  let q3_filterable =
    let co =
      join
        ~on:(("c", v "c" $. "c_custkey"), ("o", v "o" $. "o_custkey"))
        ~result:
          ( "c",
            "o",
            record
              [
                ("c_mktsegment", v "c" $. "c_mktsegment");
                ("o_orderkey", v "o" $. "o_orderkey");
                ("o_orderdate", v "o" $. "o_orderdate");
              ] )
        (source "customer") (source "orders")
    in
    join
      ~on:(("co", v "co" $. "o_orderkey"), ("l", v "l" $. "l_orderkey"))
      ~result:
        ( "co",
          "l",
          record
            [
              ("c_mktsegment", v "co" $. "c_mktsegment");
              ("o_orderdate", v "co" $. "o_orderdate");
              ("l_shipdate", v "l" $. "l_shipdate");
              ( "rev",
                (v "l" $. "l_extendedprice") *: (float 1.0 -: (v "l" $. "l_discount")) );
            ] )
      co (source "lineitem")
    |> where "x"
         ((v "x" $. "c_mktsegment" =: p "q3_segment")
         &&: (v "x" $. "o_orderdate" <: p "q3_date")
         &&: (v "x" $. "l_shipdate" >: p "q3_date"))
    |> group_by
         ~key:("x", v "x" $. "o_orderdate")
         ~result:
           ("g", record [ ("d", v "g" $. "Key"); ("r", sum (v "g") "e" (v "e" $. "rev")) ])
  in
  let engine = Lq_core.Engines.compiled_csharp in
  let prov_off = Provider.create ~optimizer:Lq_core.Optimizer.none (Lazy.force catalog) in
  let declared = time_query prov_off engine q3_filterable tpch_params in
  let optimized = time_query prov engine q3_filterable tpch_params in
  Printf.printf "  filters above joins (declared order)  %8.1f ms\n" declared;
  Printf.printf "  after selection push-down             %8.1f ms   (%.0f%% faster)\n%!"
    optimized
    (100.0 *. (declared -. optimized) /. declared);

  note "\n-- OrderBy+Take fusion (§2.3 'independent operators': heap vs full sort) --";
  let topk_q =
    source "lineitem" |> order_by [ ("s", v "s" $. "l_extendedprice", desc) ] |> take 10
  in
  let fused = time_query prov engine topk_q [] in
  let unfused =
    time_query prov
      (Lq_compiled.Csharp_engine.engine_with { default with fuse_topk = false })
      topk_q []
  in
  Printf.printf "  full sort then Take(10)               %8.1f ms\n" unfused;
  Printf.printf "  fused top-K heap                      %8.1f ms   (%.1fx)\n%!" fused
    (unfused /. fused);

  note "\n-- hash join vs nested loops (vs Steno-style codegen, §8) --";
  let join_q =
    join
      ~on:(("l", v "l" $. "l_orderkey"), ("o", v "o" $. "o_orderkey"))
      ~result:("l", "o", record [ ("k", v "l" $. "l_orderkey") ])
      (source "lineitem" |> take 2000)
      (source "orders" |> take 2000)
  in
  let hash = time_query prov engine join_q [] in
  let nested =
    time_query prov
      (Lq_compiled.Csharp_engine.engine_with { default with hash_join = false })
      join_q []
  in
  Printf.printf "  nested-loops join (2000x2000)         %8.1f ms\n" nested;
  Printf.printf "  hash join                             %8.1f ms   (%.0fx)\n%!" hash
    (nested /. hash);

  note "\n-- quicksort on unboxed vs boxed data (paper: same algorithm, C 58%% faster) --";
  let n = 200_000 in
  let rng = Lq_exec.Prng.create 17 in
  let floats = Array.init n (fun _ -> Lq_exec.Prng.float rng 1e6) in
  let boxed = Array.map (fun f -> Value.Float f) floats in
  let t_unboxed =
    let a = Array.copy floats in
    let t0 = now_ms () in
    Lq_exec.Quicksort.floats a;
    now_ms () -. t0
  in
  let t_boxed =
    let idx = Array.init n Fun.id in
    let t0 = now_ms () in
    Lq_exec.Quicksort.indices_by
      ~cmp:(fun i j -> Lq_expr.Scalar.cmp boxed.(i) boxed.(j))
      idx;
    now_ms () -. t0
  in
  Printf.printf "  quicksort %d floats, flat array    %8.1f ms\n" n t_unboxed;
  Printf.printf "  same sort through boxed values       %8.1f ms   (flat is %.0f%% faster)\n%!"
    t_boxed
    (100.0 *. (t_boxed -. t_unboxed) /. t_boxed);

  note "\n-- varying the number of aggregates (§7.1) --";
  List.iter
    (fun nagg ->
      let w = Lq_tpch.Workloads.aggregation_n nagg in
      let params = Lq_tpch.Workloads.params ~sel:0.5 in
      let linq = time_query prov Lq_core.Engines.linq_to_objects w params in
      let hybrid = time_query prov Lq_core.Engines.hybrid w params in
      Printf.printf "  %d aggregates: LINQ %8.1f ms   C#/C %8.1f ms   (%.1fx)\n%!" nagg linq
        hybrid (linq /. hybrid))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* codegen cost (§7.4 in-text) *)

let codegen () =
  header "Code generation and compilation cost (§7.4 in-text; plan-build times)";
  let cat = Lazy.force catalog in
  let prov = Provider.create ~use_cache:false cat in
  Printf.printf "%-6s %-22s %12s %10s\n" "query" "engine" "codegen[ms]" "source[B]";
  List.iter
    (fun (qname, q) ->
      (* The shared lowering runs once per plan-build in every engine; its
         cost is printed on its own line so regressions of the plan layer
         are visible separately from backend codegen. *)
      let optimized = Provider.optimized prov q in
      let t0 = Lq_metrics.Profile.now_ms () in
      ignore (Lq_plan.Lower.lower cat optimized);
      Printf.printf "%-6s %-22s %12.2f %10s\n%!" qname "(shared lowering)"
        (Lq_metrics.Profile.now_ms () -. t0)
        "-";
      List.iter
        (fun (ename, engine) ->
          match Provider.prepare_only prov ~engine q with
          | prepared, _ ->
            Printf.printf "%-6s %-22s %12.2f %10d\n%!" qname ename
              prepared.Engine_intf.codegen_ms
              (match prepared.Engine_intf.source with
              | Some s -> String.length s
              | None -> 0)
          | exception Engine_intf.Unsupported _ ->
            Printf.printf "%-6s %-22s %12s %10s\n%!" qname ename "-" "-")
        (Lazy.force engines_fig))
    Lq_tpch.Queries.all;
  (* the cache amortization story *)
  let prov = Lazy.force provider in
  Provider.clear_cache prov;
  let deltas = [ 30; 60; 90; 120; 150 ] in
  List.iter
    (fun d ->
      let params = ("q1_delta", Value.Int d) :: List.remove_assoc "q1_delta" tpch_params in
      ignore (Provider.run prov ~engine:Lq_core.Engines.compiled_c ~params Lq_tpch.Queries.q1))
    deltas;
  let stats = Provider.cache_stats prov in
  note "\nquery cache across %d parameter variants of Q1: %d compilation(s), %d hit(s)"
    (List.length deltas) stats.Lq_core.Query_cache.misses stats.Lq_core.Query_cache.hits;
  note "\ncache observability (per-engine hit/miss/compile-time counters):";
  note "%s" (Provider.report prov)

(* ------------------------------------------------------------------ *)
(* bechamel micro: per-element operator overhead *)

let bechamel_micro () =
  header "Bechamel micro: per-element cost of the enumerator pipeline vs a fused loop";
  let open Bechamel in
  let n = 10_000 in
  let arr = Array.init n (fun i -> i) in
  let pipeline_test =
    Test.make ~name:"enumerator pipeline (where+select+sum)"
      (Staged.stage (fun () ->
           let open Lq_enum.Enumerable in
           sum_int Fun.id
             (select (fun x -> x * 2) (where (fun x -> x land 1 = 0) (of_array arr)))))
  in
  let fused_test =
    Test.make ~name:"fused loop (generated-code shape)"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to n - 1 do
             let x = Array.unsafe_get arr i in
             if x land 1 = 0 then acc := !acc + (x * 2)
           done;
           !acc))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-45s %12.1f ns/call\n%!" name est
        | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
      results
  in
  benchmark pipeline_test;
  benchmark fused_test;
  note "(the ratio is the §2.3 per-element interpretation/virtual-call overhead)"

(* ------------------------------------------------------------------ *)
(* extensions beyond the paper (§9 future work) *)

let extensions () =
  header "Extensions (§9 future work): indexes, result recycling, parallel scans";
  let open Lq_expr.Dsl in
  let cat = Lazy.force catalog in
  let prov = Lazy.force provider in

  note "\n-- hash index on a point predicate (native backend) --";
  let point = source "lineitem" |> where "l" (v "l" $. "l_orderkey" =: p "k") in
  (* time a batch of lookups with varying keys (one plan, rebound) *)
  let batch prov =
    match Provider.prepare_only prov ~engine:Lq_core.Engines.compiled_c point with
    | exception Engine_intf.Unsupported _ -> nan
    | prepared, _ ->
      let run k =
        ignore (prepared.Engine_intf.execute ~params:[ ("k", Value.Int k) ] ())
      in
      run 1;
      let t0 = now_ms () in
      for k = 1 to 500 do
        run (k * 17)
      done;
      (now_ms () -. t0) /. 500.0
  in
  let scan_ms = batch prov in
  Lq_catalog.Catalog.create_index cat ~table:"lineitem" ~column:"l_orderkey";
  let index_ms = batch (Provider.create cat) in
  Printf.printf "  full scan  (per point lookup)          %8.4f ms\n" scan_ms;
  Printf.printf "  index probe (per point lookup)         %8.4f ms   (%.0fx)\n%!" index_ms
    (scan_ms /. index_ms);

  note "\n-- result recycling (repeated dashboard query) --";
  let recycling = Provider.create ~recycle_results:true cat in
  let q = Lq_tpch.Queries.q3 in
  let timed () =
    let t0 = now_ms () in
    ignore (Provider.run recycling ~engine:Lq_core.Engines.hybrid ~params:tpch_params q);
    now_ms () -. t0
  in
  let cold = timed () in
  let warm = timed () in
  Printf.printf "  first execution (compiles + runs)      %8.3f ms\n" cold;
  Printf.printf "  repeated execution (recycled result)   %8.3f ms   (%.0fx)\n%!" warm
    (cold /. warm);
  (match Provider.result_cache_stats recycling with
  | Some s ->
    Printf.printf "  result cache: %d entr%s, %d rows held, %d hit(s), %d miss(es)\n%!"
      s.Lq_core.Result_cache.entries
      (if s.Lq_core.Result_cache.entries = 1 then "y" else "ies")
      s.Lq_core.Result_cache.cached_rows s.Lq_core.Result_cache.hits
      s.Lq_core.Result_cache.misses
  | None -> ());

  note "\n-- parallel native scans (OCaml domains) --";
  let w = Lq_tpch.Workloads.aggregation in
  let params = Lq_tpch.Workloads.params ~sel:1.0 in
  let seq = time_query prov Lq_core.Engines.compiled_c w params in
  List.iter
    (fun domains ->
      let engine = Lq_parallel.Parallel_engine.engine_with ~domains in
      let ms = time_query prov engine w params in
      Printf.printf "  %d domain(s)                            %8.1f ms   (%.2fx vs sequential C)\n%!"
        domains ms (seq /. ms))
    [ 1; 2; 4 ];
  Printf.printf "  (sequential C: %.1f ms; this host reports %d recommended domains)\n%!"
    seq (Domain.recommended_domain_count ());

  note "\n-- extended TPC-H queries (beyond the paper's Q1-Q3) --";
  let eparams = Lq_tpch.Queries.extended_params in
  Printf.printf "%-6s" "query";
  List.iter (fun (n, _) -> Printf.printf " %14s" n) (Lazy.force engines_fig);
  print_newline ();
  List.iter
    (fun (qname, q) ->
      Printf.printf "%-6s" qname;
      List.iter
        (fun (_, engine) ->
          Printf.printf " %14s" (fmt_ms (time_engine prov ~engine ~params:eparams q)))
        (Lazy.force engines_fig);
      print_newline ())
    Lq_tpch.Queries.extended

(* ------------------------------------------------------------------ *)
(* tracing overhead: the off-path must stay one atomic load *)

let trace_overhead () =
  header "Tracing overhead: span-point cost with tracing off vs on";
  let module Trace = Lq_trace.Trace in
  let span_point () =
    Trace.with_span Trace.Execute "bench" (fun () -> Sys.opaque_identity ())
  in
  let time_loop n f =
    let t0 = now_ms () in
    for _ = 1 to n do
      f ()
    done;
    (now_ms () -. t0) *. 1e6 /. float_of_int n
  in
  (* warm up, then measure the disabled fast path (no live trace in the
     whole process: one atomic load and a branch per span point) *)
  ignore (time_loop 10_000 span_point);
  let off_ns = time_loop 1_000_000 span_point in
  let tr = Trace.start ~label:"bench" () in
  let on_ns = Trace.with_trace tr (fun () -> time_loop 200_000 span_point) in
  Trace.finish tr;
  Printf.printf "  span point, tracing off %10.1f ns\n" off_ns;
  Printf.printf "  span point, tracing on  %10.1f ns   (%d spans recorded)\n%!" on_ns
    (List.length (Trace.spans tr));
  (* end-to-end: a warm compiled query untraced vs traced *)
  let prov = Lazy.force provider in
  let w = Lq_tpch.Workloads.aggregation in
  let params = Lq_tpch.Workloads.params ~sel:1.0 in
  let untraced = time_query prov Lq_core.Engines.compiled_c w params in
  let tr = Trace.start ~label:"bench-e2e" () in
  let traced =
    Trace.with_trace tr (fun () -> time_query prov Lq_core.Engines.compiled_c w params)
  in
  Trace.finish tr;
  Printf.printf "  warm query, untraced    %10.3f ms\n" untraced;
  Printf.printf "  warm query, traced      %10.3f ms\n%!" traced

(* ------------------------------------------------------------------ *)
(* native JIT: wall-clock only (excluded from the deterministic scored
   suite — see Lq_bench.Suite.scored_engines) *)

let jit () =
  header "Native JIT: emitted C compiled by cc, dlopened (wall-clock)";
  if not (Lq_jit.Backend.cc_available ()) then begin
    note "SKIPPED: no C compiler on PATH (set LQ_CC to override)";
    note "the compiled-c-jit engine serves its interpreted tier on this host"
  end
  else begin
    (* Sync mode: the first prepare pays the cc run, so the jit tier is
       measurable deterministically. *)
    Unix.putenv "LQ_JIT_MODE" "sync";
    let prov = Lazy.force provider in
    let params = tpch_params @ Lq_tpch.Queries.extended_params in
    note "\n-- interpreted native tier vs dlopened object (warm, per query) --";
    List.iter
      (fun (name, q) ->
        let interp = time_query prov Lq_core.Engines.compiled_c q params in
        let jitted = time_query prov Lq_core.Engines.compiled_c_jit q params in
        Printf.printf "  %-8s interpreted %8.3f ms   jit %8.3f ms   (%.2fx)\n%!" name interp
          jitted (interp /. jitted))
      (Lq_tpch.Queries.all @ Lq_tpch.Queries.extended);
    let c = Lq_metrics.Counters.count Lq_jit.Backend.counters in
    note "\n-- tier counters --";
    Printf.printf "  compiles %d, mem hits %d, disk hits %d, jit execs %d, interpreted execs %d\n%!"
      (c "service/jit/compiles")
      (c "service/jit/cache_hit_mem")
      (c "service/jit/cache_hit_disk")
      (c "service/jit/exec_jit")
      (c "service/jit/exec_interpreted")
  end

(* ------------------------------------------------------------------ *)
(* morsel scheduling vs the static contiguous split (wall-clock) *)

let morsel () =
  header "Morsel-driven scheduling vs static contiguous split (wall-clock)";
  let prov = Lazy.force provider in
  let w = Lq_tpch.Workloads.aggregation in
  let params = Lq_tpch.Workloads.params ~sel:1.0 in
  let seq = time_query prov Lq_core.Engines.compiled_c w params in
  Printf.printf "  sequential C                           %8.1f ms\n" seq;
  Printf.printf "  (morsel size: %s rows; override with LQ_MORSEL_SIZE)\n%!"
    (match Sys.getenv_opt "LQ_MORSEL_SIZE" with
    | Some s when s <> "" -> s
    | _ -> string_of_int Lq_parallel.Parallel_engine.default_morsel_size);
  List.iter
    (fun domains ->
      let time mode =
        time_query prov (Lq_parallel.Parallel_engine.make ~mode ~domains ()) w params
      in
      let static = time Lq_parallel.Parallel_engine.Static in
      let morsels = time Lq_parallel.Parallel_engine.Morsel in
      Printf.printf
        "  %d domain(s)   static %8.1f ms   morsel %8.1f ms   (%.2fx / %.2fx vs seq)\n%!"
        domains static morsels (seq /. static) (seq /. morsels))
    [ 1; 2; 4 ]

let all_experiments =
  [
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("table1", table1);
    ("micro", micro);
    ("codegen", codegen);
    ("extensions", extensions);
    ("bechamel", bechamel_micro);
    ("trace", trace_overhead);
    ("jit", jit);
    ("morsel", morsel);
  ]

let () =
  parse_args ();
  let chosen =
    match !targets with
    | [] -> List.map fst all_experiments
    | ts -> List.rev ts
  in
  let sz = Lq_tpch.Dbgen.sizes ~sf:!sf in
  Printf.printf
    "TPC-H scale factor %.3f (%d lineitems expected), %d timed run(s) per point\n%!" !sf
    sz.Lq_tpch.Dbgen.lineitems (timed_runs ());
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst all_experiments));
        exit 2)
    chosen
