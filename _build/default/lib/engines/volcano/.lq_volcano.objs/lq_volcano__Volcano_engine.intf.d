lib/engines/volcano/volcano_engine.mli: Lq_catalog
