type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of Date.t
  | Record of (string * t) array
  | List of t list

let rec type_of = function
  | Null -> None
  | Bool _ -> Some Vtype.Bool
  | Int _ -> Some Vtype.Int
  | Float _ -> Some Vtype.Float
  | Str _ -> Some Vtype.String
  | Date _ -> Some Vtype.Date
  | Record fields ->
    let field_ty (name, v) =
      match type_of v with
      | Some ty -> Some (name, ty)
      | None -> None
    in
    let tys = Array.to_list fields |> List.filter_map field_ty in
    if List.length tys = Array.length fields then Some (Vtype.Record tys) else None
  | List [] -> None
  | List (x :: _) -> Option.map (fun ty -> Vtype.List ty) (type_of x)

let constructor_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | Date _ -> 5
  | Record _ -> 6
  | List _ -> 7

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Str a, Str b -> String.compare a b
  | Date a, Date b -> Int.compare a b
  | Record a, Record b ->
    let n = Stdlib.min (Array.length a) (Array.length b) in
    let rec go i =
      if i = n then Int.compare (Array.length a) (Array.length b)
      else
        let _, va = a.(i) and _, vb = b.(i) in
        let c = compare va vb in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  | List a, List b -> List.compare compare a b
  | (Null | Bool _ | Int _ | Float _ | Str _ | Date _ | Record _ | List _), _ ->
    Int.compare (constructor_rank a) (constructor_rank b)

let equal a b = compare a b = 0

let rec hash v =
  let combine seed h = (seed * 0x01000193) lxor h in
  match v with
  | Null -> 0x2f
  | Bool b -> if b then 0x11 else 0x13
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Date d -> combine 0x5d (Hashtbl.hash d)
  | Record fields ->
    Array.fold_left (fun acc (_, v) -> combine acc (hash v)) 0x7a fields
  | List xs -> List.fold_left (fun acc v -> combine acc (hash v)) 0x3b xs

let field_opt v name =
  match v with
  | Record fields ->
    let n = Array.length fields in
    let rec go i =
      if i = n then None
      else
        let fname, fval = fields.(i) in
        if String.equal fname name then Some fval else go (i + 1)
    in
    go 0
  | Null | Bool _ | Int _ | Float _ | Str _ | Date _ | List _ -> None

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Date d -> Date.pp fmt d
  | Record fields ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_seq
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (fun fmt (n, v) -> Format.fprintf fmt "%s=%a" n pp v))
      (Array.to_seq fields)
  | List xs ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         pp)
      xs

let to_string v = Format.asprintf "%a" pp v

let type_error expected v =
  invalid_arg (Printf.sprintf "Value: expected %s, got %s" expected (to_string v))

let field v name =
  match field_opt v name with
  | Some x -> x
  | None -> type_error (Printf.sprintf "record with field %S" name) v

let record fields = Record (Array.of_list fields)
let list xs = List xs

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int i -> i | v -> type_error "int" v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "float" v

let to_str = function Str s -> s | v -> type_error "string" v
let to_date = function Date d -> d | v -> type_error "date" v

let to_elements v =
  match v with
  | List xs -> xs
  | Record _ -> (
    match field_opt v "Items" with
    | Some (List xs) -> xs
    | Some _ | None -> type_error "enumerable" v)
  | Null | Bool _ | Int _ | Float _ | Str _ | Date _ -> type_error "enumerable" v
