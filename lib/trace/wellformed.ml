(* Trace well-formedness: the invariants every finished trace must
   satisfy, checked both on in-memory span lists (the qcheck suite) and
   on exported Chrome JSON (the verify.sh smoke, via the standalone
   checker binary):

   - every span is closed exactly once (duration present and >= 0);
   - exactly one root, and it is a [Request] span;
   - every non-root parent exists and was opened before its child
     (parent id < child id — which also rules out cycles);
   - parents contain children: a child's [start, start+dur] interval
     lies within its parent's, up to a small clock epsilon. *)

type problem = string

let check_spans ?(eps_ms = 0.1) (spans : Trace.span list) : (unit, problem list) result =
  let problems = ref [] in
  let push fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let by_id = Hashtbl.create (List.length spans * 2) in
  List.iter
    (fun (sp : Trace.span) ->
      if Hashtbl.mem by_id sp.Trace.id then push "duplicate span id %d" sp.Trace.id
      else Hashtbl.add by_id sp.Trace.id sp)
    spans;
  let roots = List.filter (fun (sp : Trace.span) -> sp.Trace.parent = 0) spans in
  (match roots with
  | [ root ] ->
    if root.Trace.kind <> Trace.Request then
      push "root span %d is %s, not request" root.Trace.id
        (Trace.kind_to_string root.Trace.kind)
  | [] -> push "no root span"
  | _ -> push "%d root spans (want exactly 1)" (List.length roots));
  List.iter
    (fun (sp : Trace.span) ->
      if sp.Trace.dur_ms < 0.0 then
        push "span %d (%s) never closed" sp.Trace.id sp.Trace.name;
      if sp.Trace.parent <> 0 then
        match Hashtbl.find_opt by_id sp.Trace.parent with
        | None -> push "span %d (%s) has unknown parent %d" sp.Trace.id sp.Trace.name sp.Trace.parent
        | Some parent ->
          if parent.Trace.id >= sp.Trace.id then
            push "span %d opened before its parent %d" sp.Trace.id parent.Trace.id;
          if sp.Trace.start_ms < parent.Trace.start_ms -. eps_ms then
            push "span %d (%s) starts %.3f ms before its parent" sp.Trace.id sp.Trace.name
              (parent.Trace.start_ms -. sp.Trace.start_ms);
          let child_end = sp.Trace.start_ms +. Float.max 0.0 sp.Trace.dur_ms in
          let parent_end = parent.Trace.start_ms +. Float.max 0.0 parent.Trace.dur_ms in
          if child_end > parent_end +. eps_ms then
            push "span %d (%s) outlives its parent by %.3f ms" sp.Trace.id sp.Trace.name
              (child_end -. parent_end))
    spans;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (List.rev ps)

let check ?eps_ms t =
  if not (Trace.is_finished t) then Error [ "trace not finished" ]
  else check_spans ?eps_ms (Trace.spans t)

(* ------------------------------------------------------------------ *)
(* the same invariants over exported Chrome JSON *)

type event = {
  e_trace : int;
  e_id : int;
  e_parent : int;
  e_cat : string;
  e_ts : int;
  e_dur : int;
}

let event_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* args = Json.member "args" j in
  let* e_trace = Option.bind (Json.member "trace" args) Json.to_int in
  let* e_id = Option.bind (Json.member "id" args) Json.to_int in
  let* e_parent = Option.bind (Json.member "parent" args) Json.to_int in
  let* e_cat = Option.bind (Json.member "cat" j) Json.to_str in
  let* e_ts = Option.bind (Json.member "ts" j) Json.to_int in
  let* e_dur = Option.bind (Json.member "dur" j) Json.to_int in
  let* ph = Option.bind (Json.member "ph" j) Json.to_str in
  if ph <> "X" then None else Some { e_trace; e_id; e_parent; e_cat; e_ts; e_dur }

(* [eps_us] absorbs the microsecond rounding of the exporter. Returns
   the number of events checked. *)
let check_chrome_json ?(eps_us = 50) (json : string) : (int, problem list) result =
  match Json.parse json with
  | Error msg -> Error [ "JSON parse error: " ^ msg ]
  | Ok doc -> (
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | None -> Error [ "no traceEvents array" ]
    | Some items -> (
      let problems = ref [] in
      let push fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      let events =
        List.filter_map
          (fun j ->
            match event_of_json j with
            | Some e -> Some e
            | None ->
              push "malformed event: %s" (Json.to_string j);
              None)
          items
      in
      let traces = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let group =
            match Hashtbl.find_opt traces e.e_trace with
            | Some g -> g
            | None ->
              let g = ref [] in
              Hashtbl.add traces e.e_trace g;
              g
          in
          group := e :: !group)
        events;
      Hashtbl.iter
        (fun trace_id group ->
          let group = !group in
          let by_id = Hashtbl.create 16 in
          List.iter
            (fun e ->
              if Hashtbl.mem by_id e.e_id then
                push "trace %d: duplicate span id %d" trace_id e.e_id
              else Hashtbl.add by_id e.e_id e)
            group;
          (match List.filter (fun e -> e.e_parent = 0) group with
          | [ root ] ->
            if root.e_cat <> "request" then
              push "trace %d: root is %S, not request" trace_id root.e_cat
          | [] -> push "trace %d: no root event" trace_id
          | roots -> push "trace %d: %d root events" trace_id (List.length roots));
          List.iter
            (fun e ->
              if e.e_dur < 0 then push "trace %d: span %d has negative dur" trace_id e.e_id;
              if e.e_parent <> 0 then
                match Hashtbl.find_opt by_id e.e_parent with
                | None -> push "trace %d: span %d has unknown parent %d" trace_id e.e_id e.e_parent
                | Some p ->
                  if e.e_ts < p.e_ts - eps_us then
                    push "trace %d: span %d starts before its parent" trace_id e.e_id;
                  if e.e_ts + e.e_dur > p.e_ts + p.e_dur + eps_us then
                    push "trace %d: span %d (ts %d dur %d) outlives parent %d (ts %d dur %d)"
                      trace_id e.e_id e.e_ts e.e_dur p.e_id p.e_ts p.e_dur)
            group)
        traces;
      match !problems with
      | [] -> Ok (List.length events)
      | ps -> Error (List.rev ps)))
