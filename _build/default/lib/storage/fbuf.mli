(** Little-endian primitive accessors over raw byte buffers.

    The moral equivalent of C pointer dereferences into unmanaged memory:
    all flat row/column/page storage bottoms out here. Integer widths
    narrower than the OCaml [int] are sign-extended on read. *)

val get_bool : bytes -> int -> bool
val set_bool : bytes -> int -> bool -> unit
val get_i32 : bytes -> int -> int
val set_i32 : bytes -> int -> int -> unit
val get_i64 : bytes -> int -> int
(** Reads a 64-bit value into a 63-bit OCaml [int] (top bit folded); all
    writers in this repository only store values produced by [set_i64],
    which round-trip exactly for any OCaml [int]. *)

val set_i64 : bytes -> int -> int -> unit
val get_f64 : bytes -> int -> float
val set_f64 : bytes -> int -> float -> unit
