lib/tpch/tbl_io.mli: Lq_catalog Lq_value Schema Value
