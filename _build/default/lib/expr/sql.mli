(** SQL rendering of expression trees.

    The inverse direction of LINQ-to-SQL's translation (§2.2): renders a
    query tree as the SQL a relational system would receive, with each
    operator becoming a derived table. Used for documentation and by the
    CLI — the Table 1 stand-ins conceptually execute "this SQL", and
    printing it makes the comparison concrete. Queries whose constructs
    have no SQL equivalent in this renderer (e.g. group objects used as
    values) are rejected. *)

exception Not_representable of string

val expr_to_sql : ?alias:(string -> string) -> Ast.expr -> string
(** Scalar expression; [alias] rewrites variable names (the caller binds
    lambda parameters to table aliases). *)

val to_sql : Ast.query -> string
(** The full [SELECT] statement, formatted over multiple lines. *)
