lib/expr/fold.mli: Ast
