lib/engines/parallel/parallel_engine.ml: Array Domain Hashtbl List Lq_catalog Lq_expr Lq_metrics Lq_native Lq_storage Lq_value Option Printf String Value
