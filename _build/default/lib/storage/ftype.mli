(** Flat (native) field types.

    The generated C code of the paper processes rows laid out as C structs.
    These are the field representations available in that world: fixed
    width, pointer-free. Strings are dictionary-encoded 32-bit handles
    ({!Dict}), dates are day-count integers. *)

type t =
  | Bool8  (** 1 byte, 0/1 *)
  | I32  (** 4-byte signed integer *)
  | I64  (** 8-byte signed integer *)
  | F64  (** IEEE double *)
  | Date32  (** 4-byte day count since 1970-01-01 *)
  | Str32  (** 4-byte dictionary code *)

val width : t -> int

val of_vtype : Lq_value.Vtype.t -> t
(** Representation chosen for a scalar host type ([Int] maps to [I64]).
    @raise Invalid_argument for record or list types — those must be
    flattened by a {!Mapping} first. *)

val to_vtype : t -> Lq_value.Vtype.t
(** The host type a flat field decodes to. *)

val c_type : t -> string
(** The C spelling used by the generated-source pretty-printer
    (e.g. ["int64_t"], ["double"]). *)

val pp : Format.formatter -> t -> unit
