module Counters = Lq_metrics.Counters

type admission =
  | Admit_all
  | Cost_aware of float

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  rejected : int;
  compile_ms : float;
}

type entry = {
  prepared : Lq_catalog.Engine_intf.prepared;
  cost_ms : float;  (** reported codegen cost, the admission currency *)
  tables : string list;  (** source tables baked into the plan *)
}

type t = {
  mu : Mutex.t;
  lru : entry Lru.t;
  admission : admission;
  counters : Counters.t;
}

let default_capacity = 256

let create ?(max_entries = default_capacity) ?(admission = Admit_all) () =
  {
    mu = Mutex.create ();
    lru = Lru.create ~max_entries ();
    admission;
    counters = Counters.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Keys pair the engine with the canonical shape; '\000' cannot occur in
   engine names, so the pairing is injective. *)
let key ~engine ~shape = engine ^ "\000" ^ shape

let engine_of_key k =
  match String.index_opt k '\000' with
  | Some i -> String.sub k 0 i
  | None -> k

let find_or_compile t ~engine ~shape ?(tables = []) ~compile () =
  Lq_fault.Inject.hit "cache/query";
  let key = key ~engine ~shape in
  let cached =
    locked t (fun () ->
        match Lru.find t.lru key with
        | Some entry ->
          Counters.incr t.counters "hits";
          Counters.incr t.counters ("hits/" ^ engine);
          Some entry.prepared
        | None -> None)
  in
  match cached with
  | Some prepared -> (prepared, `Hit)
  | None ->
    (* Compile outside the lock: codegen can be slow, and other Domains
       must be able to hit the cache meanwhile. A racing Domain compiling
       the same shape wastes one compilation but corrupts nothing. *)
    let prepared = compile () in
    let cost_ms = prepared.Lq_catalog.Engine_intf.codegen_ms in
    locked t (fun () ->
        Counters.incr t.counters "misses";
        Counters.incr t.counters ("misses/" ^ engine);
        Counters.add_ms t.counters "compile_ms" cost_ms;
        Counters.add_ms t.counters ("compile_ms/" ^ engine) cost_ms;
        if not (Lru.mem t.lru key) then begin
          (* Cost-aware admission: when full, a newcomer much cheaper to
             rebuild than the would-be victim is not worth the eviction —
             re-compiling the newcomer later costs less than re-compiling
             the victim would. *)
          let cap = Lru.max_entries t.lru in
          let reject =
            match (t.admission, Lru.peek_lru t.lru) with
            | Cost_aware factor, Some (_, victim)
              when cap >= 0 && Lru.length t.lru >= cap ->
              victim.cost_ms > cost_ms *. factor
            | _ -> false
          in
          if reject then Counters.incr t.counters "rejected"
          else
            match Lru.add t.lru ~key { prepared; cost_ms; tables } with
            | Some evicted ->
              Counters.incr ~by:(List.length evicted) t.counters "evictions"
            | None -> Counters.incr t.counters "rejected"
        end);
    (prepared, `Miss)

(* Compiled plans bind their sources at prepare time (the native backend
   compiles against the table's flat store), so a reloaded table makes
   every plan over it stale, not just its recycled results. *)
let invalidate t ~table =
  locked t (fun () ->
      let dropped =
        Lru.drop_where t.lru (fun _ entry ->
            List.exists (String.equal table) entry.tables)
      in
      if dropped > 0 then Counters.incr ~by:dropped t.counters "invalidations")

let stats t =
  locked t (fun () ->
      {
        hits = Counters.count t.counters "hits";
        misses = Counters.count t.counters "misses";
        entries = Lru.length t.lru;
        evictions = Counters.count t.counters "evictions";
        rejected = Counters.count t.counters "rejected";
        compile_ms = Counters.value t.counters "compile_ms";
      })

let counters t = t.counters

let engines t =
  locked t (fun () ->
      Lru.to_alist t.lru
      |> List.map (fun (k, _) -> engine_of_key k)
      |> List.sort_uniq String.compare)

let clear t =
  locked t (fun () ->
      Lru.clear t.lru;
      Counters.reset t.counters)

let const_params consts =
  List.mapi (fun i v -> (Printf.sprintf "__c%d" i, v)) consts
