(** Shared fixtures for the test suite: a small sales catalog, a random
    query generator for differential testing, and comparison helpers. *)

open Lq_value
module Ast = Lq_expr.Ast

let value_testable =
  Alcotest.testable Value.pp Value.equal

let check_rows = Alcotest.(check (list value_testable))

(* ------------------------------------------------------------------ *)
(* A small deterministic "sales" catalog used across suites. *)

let sales_schema =
  Schema.make
    [
      ("id", Vtype.Int);
      ("city", Vtype.String);
      ("qty", Vtype.Int);
      ("price", Vtype.Float);
      ("day", Vtype.Date);
      ("vip", Vtype.Bool);
    ]

let cities = [| "London"; "Paris"; "Rome"; "Berlin"; "Madrid" |]

let sales_rows ?(n = 200) ?(seed = 7) () =
  let rng = Lq_exec.Prng.create seed in
  List.init n (fun i ->
      Schema.row sales_schema
        [
          Value.Int i;
          Value.Str cities.(Lq_exec.Prng.int rng (Array.length cities));
          Value.Int (1 + Lq_exec.Prng.int rng 50);
          Value.Float (float_of_int (Lq_exec.Prng.int rng 10000) /. 100.0);
          Value.Date (Date.of_ymd 2020 1 1 + Lq_exec.Prng.int rng 365);
          Value.Bool (Lq_exec.Prng.bool rng);
        ])

let shops_schema =
  Schema.make
    [ ("city", Vtype.String); ("country", Vtype.String); ("rank", Vtype.Int) ]

let shops_rows () =
  List.map
    (fun (c, k, r) -> Schema.row shops_schema [ Value.Str c; Value.Str k; Value.Int r ])
    [
      ("London", "UK", 1);
      ("Paris", "FR", 2);
      ("Rome", "IT", 3);
      ("Berlin", "DE", 4);
      (* Madrid intentionally missing: joins must drop unmatched rows. *)
    ]

let sales_catalog ?n ?seed () =
  let cat = Lq_catalog.Catalog.create () in
  Lq_catalog.Catalog.add cat ~name:"sales" ~schema:sales_schema (sales_rows ?n ?seed ());
  Lq_catalog.Catalog.add cat ~name:"shops" ~schema:shops_schema (shops_rows ());
  cat

(* A nested-schema catalog (for hybrid/mapping tests): order → item → shop. *)
let nested_schema =
  Schema.make
    [
      ("oid", Vtype.Int);
      ( "item",
        Vtype.Record
          [ ("name", Vtype.String); ("price", Vtype.Float); ("weight", Vtype.Int) ] );
      ( "shop",
        Vtype.Record [ ("city", Vtype.String); ("zip", Vtype.Int) ] );
    ]

let nested_rows ?(n = 60) () =
  let rng = Lq_exec.Prng.create 11 in
  List.init n (fun i ->
      Value.record
        [
          ("oid", Value.Int i);
          ( "item",
            Value.record
              [
                ("name", Value.Str (Printf.sprintf "item-%d" (i mod 7)));
                ("price", Value.Float (float_of_int (Lq_exec.Prng.int rng 500) /. 10.0));
                ("weight", Value.Int (Lq_exec.Prng.int rng 20));
              ] );
          ( "shop",
            Value.record
              [
                ("city", Value.Str cities.(i mod Array.length cities));
                ("zip", Value.Int (10000 + (i mod 97)));
              ] );
        ])

let nested_catalog () =
  let cat = Lq_catalog.Catalog.create () in
  Lq_catalog.Catalog.add cat ~name:"orders" ~schema:nested_schema (nested_rows ());
  cat

(* ------------------------------------------------------------------ *)
(* Random query generation over the sales catalog, for differential
   testing of engines against the reference interpreter. *)

let gen_pred var : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Lq_expr.Dsl in
  let field = oneofl [ "id"; "qty" ] in
  let leaf =
    oneof
      [
        (let* f = field and* k = int_range 0 60 in
         return (v var $. f >: int k));
        (let* f = field and* k = int_range 0 60 in
         return (v var $. f <=: int k));
        (let* c = oneofl (Array.to_list cities) in
         return (v var $. "city" =: str c));
        (let* c = oneofl [ "Lon"; "Par"; "Ro" ] in
         return (starts_with (v var $. "city") (str c)));
        (let* x = float_range 0.0 100.0 in
         return (v var $. "price" <: float x));
        return (v var $. "vip" =: bool true);
        (let* k = int_range 0 10 in
         return ((v var $. "qty") %: int 7 =: int (k mod 7)));
      ]
  in
  let* a = leaf and* b = leaf and* shape = int_range 0 3 in
  match shape with
  | 0 -> return a
  | 1 -> return (a &&: b)
  | 2 -> return (a ||: b)
  | _ -> return (not_ a)

let gen_query_from (base : Ast.query QCheck2.Gen.t) : Ast.query QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Lq_expr.Dsl in
  let base =
    let* pred = gen_pred "s" and* start = base in
    return (start |> where "s" pred)
  in
  let with_projection q =
    oneof
      [
        return q;
        return
          (q
          |> select "s"
               (record
                  [
                    ("id", v "s" $. "id");
                    ("city", v "s" $. "city");
                    ("qty", v "s" $. "qty");
                    ("price", (v "s" $. "price") *: float 1.1);
                  ]));
      ]
  in
  let with_shape q =
    oneof
      [
        return q;
        return (q |> order_by [ ("o", v "o" $. "qty", desc); ("o", v "o" $. "city", asc) ]);
        (let* k = int_range 0 25 in
         return (q |> order_by [ ("o", v "o" $. "city", asc) ] |> take k));
        (let* k = int_range 0 50 in
         return (q |> skip k));
        return (q |> distinct);
        return
          (q
          |> group_by
               ~key:("g", v "g" $. "city")
               ~result:
                 ( "grp",
                   record
                     [
                       ("city", v "grp" $. "Key");
                       ("n", count (v "grp"));
                       ("total", sum (v "grp") "x" (v "x" $. "qty"));
                       ("avg_price", avg (v "grp") "x" (v "x" $. "price"));
                       ("worst", max_of (v "grp") "x" (v "x" $. "price"));
                     ] ));
        return
          (join
             ~on:(("l", v "l" $. "city"), ("r", v "r" $. "city"))
             ~result:
               ( "l",
                 "r",
                 record
                   [
                     ("id", v "l" $. "id");
                     ("country", v "r" $. "country");
                     ("qty", v "l" $. "qty");
                   ] )
             q (source "shops"));
      ]
  in
  let* q = base in
  let* q = with_projection q in
  with_shape q

let gen_query : Ast.query QCheck2.Gen.t =
  gen_query_from (QCheck2.Gen.return (Lq_expr.Dsl.source "sales"))

(* Queries whose base filter reads a runtime parameter, plus its binding:
   exercises the cached-plan parameter-rebinding path end to end. *)
let gen_query_with_params :
    (Ast.query * (string * Value.t) list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Lq_expr.Dsl in
  let* lo = int_range 0 120 in
  let base = return (source "sales" |> where "s0" (v "s0" $. "id" <: p "lo")) in
  let* q = gen_query_from base in
  return (q, [ ("lo", Value.Int lo) ])

let query_print q = Lq_expr.Pretty.query_to_string q

(* ------------------------------------------------------------------ *)
(* Random correlated/nested queries over sales+shops, exercising the
   decorrelation pass (lib/plan/decorrelate.ml) differentially.  Each
   sample pairs the query with its expected routing: [`Rewritable]
   shapes sit inside the documented rewrite subset (DESIGN.md §12), so
   compiled engines must run them; [`Correlated] shapes must be refused
   by the rewrite, leaving compiled engines to raise Unsupported while
   the interpreting engines still answer. *)

let gen_correlated_query :
    (Ast.query * [ `Rewritable | `Correlated ]) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Lq_expr.Dsl in
  (* Correlated inner sources; [ov] is the outer query variable. *)
  let inner_sales ov =
    let* extra = oneofl [ None; Some 10; Some 25; Some 40 ] in
    let corr = v "y" $. "city" =: (v ov $. "city") in
    let body =
      match extra with
      | None -> corr
      | Some k -> corr &&: (v "y" $. "qty" >: int k)
    in
    return (source "sales" |> where "y" body)
  in
  (* Two correlation keys: forces the composite __dc_k0/__dc_k1 join key. *)
  let inner_sales2 ov =
    return
      (source "sales"
      |> where "y"
           ((v "y" $. "city" =: (v ov $. "city"))
           &&: (v "y" $. "vip" =: (v ov $. "vip"))))
  in
  let inner_shops ov =
    let* extra = oneofl [ None; Some 1; Some 3 ] in
    let corr = v "x" $. "city" =: (v ov $. "city") in
    let body =
      match extra with
      | None -> corr
      | Some r -> corr &&: (v "x" $. "rank" >=: int r)
    in
    return (source "shops" |> where "x" body)
  in
  (* Depth 2: a correlated aggregate whose inner filter itself holds a
     correlated EXISTS over the inner element. *)
  let depth2 ov =
    return
      (source "sales"
      |> where "y"
           ((v "y" $. "city" =: (v ov $. "city"))
           &&: (count
                  (subquery
                     (source "shops"
                     |> where "x" (v "x" $. "city" =: (v "y" $. "city"))))
               >: int 0)))
  in
  let rewritable ov =
    oneof
      [
        (let* q = inner_sales ov in
         return (v ov $. "qty" =: min_of (subquery q) "z" (v "z" $. "qty")));
        (let* q = inner_sales ov in
         return (v ov $. "qty" =: max_of (subquery q) "z" (v "z" $. "qty")));
        (let* q = inner_sales ov in
         return (v ov $. "price" =: min_of (subquery q) "z" (v "z" $. "price")));
        (let* q = inner_sales2 ov in
         return (v ov $. "price" =: avg (subquery q) "z" (v "z" $. "price")));
        (let* q = inner_shops ov in
         return (count (subquery q) >: int 0));
        (let* q = inner_sales ov in
         return (count (subquery q) >=: int 1));
        (let* q = inner_sales ov in
         return (sum (subquery q) "z" (v "z" $. "qty") >: int 0));
        (let* q = depth2 ov in
         return (v ov $. "qty" =: min_of (subquery q) "z" (v "z" $. "qty")));
      ]
  in
  let correlated_only ov =
    oneof
      [
        (* inequality against a correlated aggregate *)
        (let* q = inner_sales ov in
         return (v ov $. "qty" <: max_of (subquery q) "z" (v "z" $. "qty")));
        (* Eq with Count: empty groups would make 0 match, so refused *)
        (let* q = inner_sales ov in
         return (v ov $. "qty" =: count (subquery q)));
        (* NOT EXISTS: empty groups must pass, a semijoin would drop them *)
        (let* q = inner_shops ov in
         return (not_ (count (subquery q) >: int 0)));
      ]
  in
  let* kind = frequency [ (3, return `Rewritable); (1, return `Correlated) ] in
  let* pred =
    match kind with
    | `Rewritable -> rewritable "s"
    | `Correlated -> correlated_only "s"
  in
  let* plain =
    oneofl [ None; Some (v "s" $. "qty" >: int 15); Some (v "s" $. "vip" =: bool true) ]
  in
  let body = match plain with None -> pred | Some p0 -> p0 &&: pred in
  let base = source "sales" |> where "s" body in
  let* q =
    oneofl
      [
        base;
        base |> select "s" (record [ ("id", v "s" $. "id"); ("qty", v "s" $. "qty") ]);
        base |> order_by [ ("o", v "o" $. "id", asc) ] |> take 12;
      ]
  in
  return (q, kind)

let correlated_query_print (q, kind) =
  (match kind with
  | `Rewritable -> "[rewritable] "
  | `Correlated -> "[correlated] ")
  ^ query_print q

(* ------------------------------------------------------------------ *)

let rows_equal expected got =
  List.length expected = List.length got && List.for_all2 Value.equal expected got

(* Equality with a relative tolerance on floats: parallel partial-sum
   merges legitimately differ from sequential folds in the last bits. *)
let rec value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
    x = y
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | Value.Record fa, Value.Record fb ->
    Array.length fa = Array.length fb
    && Array.for_all2
         (fun (na, va) (nb, vb) -> String.equal na nb && value_close va vb)
         fa fb
  | Value.List xa, Value.List xb ->
    List.length xa = List.length xb && List.for_all2 value_close xa xb
  | _ -> Value.equal a b

let rows_close expected got =
  List.length expected = List.length got && List.for_all2 value_close expected got

let engine_agrees_with_reference ?(params = []) ?provider cat
    (engine : Lq_catalog.Engine_intf.t) q =
  let prov =
    match provider with
    | Some prov -> prov
    | None -> Lq_core.Provider.create cat
  in
  let expected = Lq_core.Provider.reference prov ~params q in
  match Lq_core.Provider.run prov ~engine ~params q with
  | got -> if rows_close expected got then `Agree else `Disagree (expected, got)
  | exception Lq_catalog.Engine_intf.Unsupported _ -> `Unsupported

let qtest ?print ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ?print ~name ~count gen prop)
