lib/cachesim/hierarchy.ml: Level Printf String
