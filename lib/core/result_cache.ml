open Lq_value
module Counters = Lq_metrics.Counters

type stats = {
  hits : int;
  misses : int;
  entries : int;
  cached_rows : int;
  evictions : int;
  invalidations : int;
}

type entry = {
  rows : Value.t list;
  tables : string list;  (** source tables; the invalidation fan-out *)
}

type t = {
  mu : Mutex.t;
  lru : entry Lru.t;
  counters : Counters.t;
}

let create ?(max_entries = 128) ?(max_rows = 262_144) () =
  {
    mu = Mutex.create ();
    lru = Lru.create ~max_entries ~max_weight:max_rows ();
    counters = Counters.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let key ~engine ~shape ~consts ~params =
  let buf = Buffer.create 128 in
  Buffer.add_string buf engine;
  Buffer.add_char buf '\000';
  Buffer.add_string buf shape;
  List.iter
    (fun v ->
      Buffer.add_char buf '\000';
      Buffer.add_string buf (Value.to_string v))
    consts;
  List.iter
    (fun (name, v) ->
      Buffer.add_char buf '\001';
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      Buffer.add_string buf (Value.to_string v))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) params);
  Buffer.contents buf

let find t key =
  locked t (fun () ->
      match Lru.find t.lru key with
      | Some entry ->
        Counters.incr t.counters "hits";
        Some entry.rows
      | None ->
        Counters.incr t.counters "misses";
        None)

let store t key ?(tables = []) rows =
  locked t (fun () ->
      if not (Lru.mem t.lru key) then
        let weight = List.length rows in
        match Lru.add t.lru ~key ~weight { rows; tables } with
        | Some evicted ->
          if evicted <> [] then
            Counters.incr ~by:(List.length evicted) t.counters "evictions"
        | None -> Counters.incr t.counters "rejected")

let invalidate t ~table =
  locked t (fun () ->
      let dropped =
        Lru.drop_where t.lru (fun _ entry ->
            List.exists (String.equal table) entry.tables)
      in
      if dropped > 0 then Counters.incr ~by:dropped t.counters "invalidations")

let stats t =
  locked t (fun () ->
      {
        hits = Counters.count t.counters "hits";
        misses = Counters.count t.counters "misses";
        entries = Lru.length t.lru;
        cached_rows = Lru.total_weight t.lru;
        evictions = Counters.count t.counters "evictions";
        invalidations = Counters.count t.counters "invalidations";
      })

let counters t = t.counters

let clear t =
  locked t (fun () ->
      Lru.clear t.lru;
      Counters.reset t.counters)
