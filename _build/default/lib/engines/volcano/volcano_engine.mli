(** Interpreted tuple-at-a-time relational engine (Table 1's "SQL Server
    2014" interpreted stand-in).

    Classic Volcano [open]/[next]/[close] iterators over the flat row
    store: every [next] decodes one row into a boxed tuple, every
    expression is interpreted per tuple, each operator is an independent
    state machine. This is what query compilation in a DBMS is measured
    against (Hekaton's ~3x, §7.5); it differs from the LINQ-to-objects
    baseline in reading from relational storage rather than from
    application objects. *)

val engine : Lq_catalog.Engine_intf.t
