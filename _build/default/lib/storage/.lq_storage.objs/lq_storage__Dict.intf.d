lib/storage/dict.mli:
