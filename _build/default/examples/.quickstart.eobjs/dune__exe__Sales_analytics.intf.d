examples/sales_analytics.mli:
