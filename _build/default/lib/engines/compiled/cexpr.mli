(** Expression compilation to specialized closures over boxed values.

    The analogue of §4's generated C# scalar code: at plan-build time every
    lambda body becomes a closure in which

    - member accesses are positional array reads (indexes resolved against
      the statically known record type — no name lookup per element),
    - variables are reads of a reusable frame (registers), and
    - parameters are reads of the parameter block bound at execution.

    Aggregates and sub-queries have no direct compiled form at this level;
    the plan compiler supplies hooks that splice in accumulator reads and
    pre-evaluated sub-query results. *)

open Lq_value

type rt = {
  frame : Value.t array;  (** variable slots, reused across rows *)
  params : Value.t array;  (** parameter block, bound per execution *)
}

type compiled = rt -> Value.t

(** Static compilation context: parameter slots and frame allocation. *)
type ctx

val ctx : unit -> ctx

val param_slot : ctx -> string -> int
(** Slot of a named parameter (allocated on first use). *)

val param_names : ctx -> string list
(** Parameters seen so far, in slot order. *)

val alloc_slot : ctx -> int
(** A fresh frame slot. *)

val frame_size : ctx -> int

val make_rt : ctx -> params:(string * Value.t) list -> rt
(** Runtime blocks for one execution.
    @raise Invalid_argument if a used parameter is unbound. *)

(** Static typing of bound variables: name, frame slot, element type when
    known ([None] = dynamic — e.g. values derived from parameters). *)
type binding = { var : string; slot : int; vty : Vtype.t option }

val compile :
  ctx ->
  env:binding list ->
  ?on_agg:(Lq_expr.Ast.agg -> Lq_expr.Ast.expr -> Lq_expr.Ast.lambda option -> compiled * Vtype.t option) ->
  ?on_subquery:(Lq_expr.Ast.query -> compiled * Vtype.t option) ->
  Lq_expr.Ast.expr ->
  compiled * Vtype.t option
(** Compiles an expression; raises {!Lq_catalog.Engine_intf.Unsupported}
    on [Agg]/[Subquery] nodes when no hook is given, and
    {!Lq_expr.Typecheck.Type_error} on members of statically unknown or
    non-record receivers. *)
